"""Rule catalogue of the determinism lint pass.

Every rule defends one of the reproducibility contracts the test suite
pins dynamically (bitwise-identical campaign output at any worker
count, same-seed retries, generation-invalidated route caches) — the
lint pass makes the same contracts hold *statically*, at commit time.

Rule families:

``RNG``  RNG discipline — every stochastic component must draw from an
         injected, seeded generator; process-global RNG state is banned.
``DET``  Determinism hazards — unordered iteration, ``id()`` keying and
         wall-clock reads that can silently change simulator output.
``ART``  Artifact discipline — result files must go through the atomic
         tmp-then-rename write primitives so a crash never truncates.
``FLT``  Float discipline — invariant/audit code must not compare
         floats with ``==`` against non-integral literals.

Project-level families (``--project``; need the whole-program call
graph and type index from :mod:`repro.lint.project`):

``ASYNC`` Event-loop safety — no blocking call reachable from the
          service's ``async def``s, no dropped coroutines, no serving
          shared state written off the batcher path.
``DUR``   Durability ordering — manager mutations dominated by a WAL/
          journal append on all call-graph paths; journals reach flush;
          fd-level durability stays inside the WAL layer.
``SOA``   Aggregate coherence — LinkTable base-column writers refresh
          the materialized tier in the same function; the failed/
          failed_py mirror never splits.

Each rule knows which paths it applies to: wall-clock reads are the
whole point of the timing infrastructure under ``repro/parallel`` and
``benchmarks/``, and bitwise regression *tests* legitimately pin exact
float values, so those combinations are exempt by construction instead
of needing suppression comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple


def _always(path: str) -> bool:
    return True


#: Admission-service modules that form the *timing plane*: the serving
#: shell (deadlines, drain), latency telemetry and the load generator.
#: Decision logic (engine/protocol/wal/shedding/replay) is NOT here —
#: it must stay wall-clock-free so live runs replay bitwise.
_SERVICE_TIMING_MODULES = (
    "repro/service/server.py",
    "repro/service/telemetry.py",
    "repro/service/loadgen.py",
    "repro/service/procs.py",
    "repro/service/supervisor.py",
    "repro/service/soak.py",
)


def _not_timing_infra(path: str) -> bool:
    """Wall-clock reads are legitimate in the timing/benchmark layers."""
    return not (
        "/parallel/" in path
        or path.startswith("benchmarks/")
        or "/benchmarks/" in path
        or any(module in path for module in _SERVICE_TIMING_MODULES)
        or "tests/service/" in path
    )


def _src_only(path: str) -> bool:
    """Bitwise regression tests pin exact floats on purpose."""
    parts = path.split("/")
    return "tests" not in parts and not parts[-1].startswith("test_")


#: Packages whose float trajectories the validation contract pins
#: bitwise (they also carry strict mypy settings — see pyproject.toml).
_PINNED_PACKAGES = ("repro/markov/", "repro/routing/", "repro/network/", "repro/elastic/")


def _pinned_packages_only(path: str) -> bool:
    """Only the bitwise-pinned numeric packages."""
    return any(pkg in path for pkg in _PINNED_PACKAGES)


def _service_src_only(path: str) -> bool:
    """Service-layer sources (the findings of the service-protocol rules
    always land there; test doubles are free to fake the protocols)."""
    return "repro/service/" in path and _src_only(path)


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, rationale, and path applicability.

    ``project=True`` marks whole-program rules: they run only under
    ``--project`` (they need the cross-module index) and their
    ``applies`` predicate filters where *findings* may land rather than
    which files are analysed.
    """

    id: str
    name: str
    summary: str
    hint: str
    applies: Callable[[str], bool] = _always
    project: bool = False

    def applies_to(self, path: str) -> bool:
        """Whether this rule is checked at all for ``path`` (posix form)."""
        return self.applies(path.replace("\\", "/"))


RULES: Tuple[Rule, ...] = (
    Rule(
        id="RNG001",
        name="stdlib-global-random",
        summary=(
            "call to a process-global `random` module function; stochastic "
            "code must draw from an injected `random.Random(seed)` instance"
        ),
        hint=(
            "accept a seeded `random.Random` (or numpy Generator) parameter "
            "and call its bound methods instead"
        ),
    ),
    Rule(
        id="RNG002",
        name="numpy-legacy-global-random",
        summary=(
            "call into numpy's legacy global RNG (`np.random.<fn>`); every "
            "stochastic component must accept a `numpy.random.Generator` "
            "spawned from the campaign `SeedSequence`"
        ),
        hint=(
            "thread a `numpy.random.Generator` (from `default_rng(seed)` or "
            "`SeedSequence.spawn`) through the call chain"
        ),
    ),
    Rule(
        id="RNG003",
        name="legacy-randomstate",
        summary=(
            "construction of legacy `numpy.random.RandomState`; the campaign "
            "seeding contract is built on `Generator`/`SeedSequence`"
        ),
        hint="use `numpy.random.default_rng(seed)`",
    ),
    Rule(
        id="DET001",
        name="unordered-set-iteration",
        summary=(
            "iteration over an unordered set expression in an order-sensitive "
            "context; set order depends on PYTHONHASHSEED and insertion "
            "history, so anything event-ordered built from it is unstable"
        ),
        hint="wrap the set in `sorted(...)` before iterating",
    ),
    Rule(
        id="DET002",
        name="id-as-key",
        summary=(
            "`id(...)` call; object ids are allocation addresses — keying a "
            "cache or memo on them breaks across processes and silently "
            "aliases once an object is garbage-collected"
        ),
        hint=(
            "key on a stable identity (conn_id, a frozen dataclass, an "
            "explicit token); for debug-only prints, suppress with "
            "`# repro-lint: disable=DET002`"
        ),
    ),
    Rule(
        id="DET003",
        name="wall-clock-in-sim",
        summary=(
            "wall-clock read in simulation logic; simulated time must come "
            "from the event clock, and timestamps in results break bitwise "
            "reproducibility"
        ),
        hint=(
            "use the simulator's event time, or move timing measurement into "
            "`repro.parallel` / the benchmark layer"
        ),
        applies=_not_timing_infra,
    ),
    Rule(
        id="DET004",
        name="item-accumulation-drift",
        summary=(
            "`+=`/`-=` accumulation whose right-hand side extracts a "
            "scalar via `.item()`; in a bitwise-pinned package the "
            "dtype-laundered Python float can drift from the column "
            "arithmetic it mirrors, so the scalar and vectorized "
            "trajectories silently diverge"
        ),
        hint=(
            "accumulate in the array column itself (or on values read "
            "without `.item()`) so scalar and vector paths share one "
            "float trajectory"
        ),
        applies=_pinned_packages_only,
    ),
    Rule(
        id="ART001",
        name="raw-artifact-write",
        summary=(
            "raw file write (`open(.., 'w')` / `Path.write_*`); a crash "
            "mid-write leaves a truncated artifact that poisons `--resume`"
        ),
        hint=(
            "route the write through `repro.parallel.atomic_write_text` / "
            "`atomic_write_bytes`"
        ),
    ),
    Rule(
        id="FLT001",
        name="float-literal-equality",
        summary=(
            "`==`/`!=` against a non-integral float literal in invariant/"
            "audit code; accumulated float state rarely equals a decimal "
            "literal exactly, so the check is either dead or flaky"
        ),
        hint=(
            "compare against an epsilon (`abs(x - 0.3) < EPSILON`) or an "
            "exactly-representable quantity"
        ),
        applies=_src_only,
    ),
    Rule(
        id="ASYNC001",
        name="blocking-call-in-async-path",
        summary=(
            "blocking call (`time.sleep`, `os.fsync`, subprocess, "
            "synchronous file write) reachable from an `async def` in the "
            "service; one blocked call stalls every connected client"
        ),
        hint=(
            "run it in an executor (`loop.run_in_executor`/`asyncio."
            "to_thread`) or route it through the WAL layer, whose blocking "
            "is the write-ahead contract"
        ),
        applies=_src_only,
        project=True,
    ),
    Rule(
        id="ASYNC002",
        name="unawaited-coroutine",
        summary=(
            "coroutine function called as a bare statement; the coroutine "
            "object is created and dropped, so the body never runs"
        ),
        hint="`await` it, or hand it to `asyncio.create_task(...)`",
        applies=_service_src_only,
        project=True,
    ),
    Rule(
        id="ASYNC003",
        name="shared-state-off-batcher-path",
        summary=(
            "serving shared state (mode/engine/journal/drain flags) written "
            "by a method that is not on the batcher/lifecycle/signal path; "
            "per-connection handlers race the batch loop"
        ),
        hint=(
            "mutate serving state only from the batcher task, a lifecycle "
            "method, or a signal handler; handlers enqueue requests instead"
        ),
        applies=_service_src_only,
        project=True,
    ),
    Rule(
        id="DUR001",
        name="mutation-not-durability-dominated",
        summary=(
            "manager mutation not dominated on every call-graph path by a "
            "WAL append (`log_events`), a journal append, or an explicit "
            "`wal is None` check; a crash between apply and log loses an "
            "acked event"
        ),
        hint=(
            "follow the write-ahead discipline of ServiceEngine.apply_batch: "
            "validate, append+fsync, then apply"
        ),
        applies=_service_src_only,
        project=True,
    ),
    Rule(
        id="DUR002",
        name="journal-never-flushed",
        summary=(
            "a degraded-mode journal collects operations but no async-"
            "reachable method flushes it to the WAL via `log_events`; "
            "journaled ops would never become durable"
        ),
        hint=(
            "add a probation/drain flush (`wal.log_events(self.<journal>)`) "
            "reachable from the batcher, as in AdmissionService._rearm"
        ),
        applies=_service_src_only,
        project=True,
    ),
    Rule(
        id="DUR003",
        name="fd-durability-outside-wal",
        summary=(
            "direct `os.fsync`/`os.fdatasync`/`os.(f)truncate` outside "
            "repro.service.wal; fd-level durability elsewhere bypasses the "
            "WAL's tear detection, fault injection, and repair accounting"
        ),
        hint=(
            "go through the WAL layer, or suppress with a reason for "
            "recovery-time surgery the WAL re-verifies afterwards"
        ),
        applies=_service_src_only,
        project=True,
    ),
    Rule(
        id="SOA001",
        name="stale-aggregate-write",
        summary=(
            "LinkTable base column (primary_min/primary_extra/activated/"
            "backup_reserved/capacity) written without `_refresh_cell`/"
            "`refresh_cells`/`mark_aggregates_dirty` in the same function; "
            "the materialized spare/headroom tier goes stale"
        ),
        hint=(
            "scalar writes pair with `_refresh_cell`/`refresh_cells`; bulk "
            "writes call `mark_aggregates_dirty()` (two-tier protocol)"
        ),
        applies=_src_only,
        project=True,
    ),
    Rule(
        id="SOA002",
        name="failed-mask-mirror-split",
        summary=(
            "LinkTable `failed` written without `failed_py` in the same "
            "function (or vice versa); the numpy mask and its Python "
            "mirror diverge and the sequential tail reads stale state"
        ),
        hint="write both sides together, as LinkTable.fail/repair do",
        applies=_src_only,
        project=True,
    ),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in RULES}

#: Rule ids grouped by family prefix, for `--select RNG` style filters.
FAMILIES: Tuple[str, ...] = ("RNG", "DET", "ART", "FLT", "ASYNC", "DUR", "SOA")


def expand_rule_selection(tokens: Tuple[str, ...]) -> Tuple[str, ...]:
    """Expand a mix of rule ids and family prefixes into rule ids.

    Raises:
        ValueError: on a token that is neither a rule id nor a family.
    """
    selected = []
    for token in tokens:
        token = token.strip().upper()
        if not token:
            continue
        if token in RULES_BY_ID:
            selected.append(token)
        elif token in FAMILIES:
            selected.extend(r.id for r in RULES if r.id.startswith(token))
        else:
            raise ValueError(f"unknown rule or family: {token!r}")
    return tuple(dict.fromkeys(selected))
