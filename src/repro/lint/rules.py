"""Rule catalogue of the determinism lint pass.

Every rule defends one of the reproducibility contracts the test suite
pins dynamically (bitwise-identical campaign output at any worker
count, same-seed retries, generation-invalidated route caches) — the
lint pass makes the same contracts hold *statically*, at commit time.

Rule families:

``RNG``  RNG discipline — every stochastic component must draw from an
         injected, seeded generator; process-global RNG state is banned.
``DET``  Determinism hazards — unordered iteration, ``id()`` keying and
         wall-clock reads that can silently change simulator output.
``ART``  Artifact discipline — result files must go through the atomic
         tmp-then-rename write primitives so a crash never truncates.
``FLT``  Float discipline — invariant/audit code must not compare
         floats with ``==`` against non-integral literals.

Each rule knows which paths it applies to: wall-clock reads are the
whole point of the timing infrastructure under ``repro/parallel`` and
``benchmarks/``, and bitwise regression *tests* legitimately pin exact
float values, so those combinations are exempt by construction instead
of needing suppression comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple


def _always(path: str) -> bool:
    return True


#: Admission-service modules that form the *timing plane*: the serving
#: shell (deadlines, drain), latency telemetry and the load generator.
#: Decision logic (engine/protocol/wal/shedding/replay) is NOT here —
#: it must stay wall-clock-free so live runs replay bitwise.
_SERVICE_TIMING_MODULES = (
    "repro/service/server.py",
    "repro/service/telemetry.py",
    "repro/service/loadgen.py",
    "repro/service/procs.py",
    "repro/service/supervisor.py",
    "repro/service/soak.py",
)


def _not_timing_infra(path: str) -> bool:
    """Wall-clock reads are legitimate in the timing/benchmark layers."""
    return not (
        "/parallel/" in path
        or path.startswith("benchmarks/")
        or "/benchmarks/" in path
        or any(module in path for module in _SERVICE_TIMING_MODULES)
        or "tests/service/" in path
    )


def _src_only(path: str) -> bool:
    """Bitwise regression tests pin exact floats on purpose."""
    parts = path.split("/")
    return "tests" not in parts and not parts[-1].startswith("test_")


#: Packages whose float trajectories the validation contract pins
#: bitwise (they also carry strict mypy settings — see pyproject.toml).
_PINNED_PACKAGES = ("repro/markov/", "repro/routing/", "repro/network/", "repro/elastic/")


def _pinned_packages_only(path: str) -> bool:
    """Only the bitwise-pinned numeric packages."""
    return any(pkg in path for pkg in _PINNED_PACKAGES)


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, rationale, and path applicability."""

    id: str
    name: str
    summary: str
    hint: str
    applies: Callable[[str], bool] = _always

    def applies_to(self, path: str) -> bool:
        """Whether this rule is checked at all for ``path`` (posix form)."""
        return self.applies(path.replace("\\", "/"))


RULES: Tuple[Rule, ...] = (
    Rule(
        id="RNG001",
        name="stdlib-global-random",
        summary=(
            "call to a process-global `random` module function; stochastic "
            "code must draw from an injected `random.Random(seed)` instance"
        ),
        hint=(
            "accept a seeded `random.Random` (or numpy Generator) parameter "
            "and call its bound methods instead"
        ),
    ),
    Rule(
        id="RNG002",
        name="numpy-legacy-global-random",
        summary=(
            "call into numpy's legacy global RNG (`np.random.<fn>`); every "
            "stochastic component must accept a `numpy.random.Generator` "
            "spawned from the campaign `SeedSequence`"
        ),
        hint=(
            "thread a `numpy.random.Generator` (from `default_rng(seed)` or "
            "`SeedSequence.spawn`) through the call chain"
        ),
    ),
    Rule(
        id="RNG003",
        name="legacy-randomstate",
        summary=(
            "construction of legacy `numpy.random.RandomState`; the campaign "
            "seeding contract is built on `Generator`/`SeedSequence`"
        ),
        hint="use `numpy.random.default_rng(seed)`",
    ),
    Rule(
        id="DET001",
        name="unordered-set-iteration",
        summary=(
            "iteration over an unordered set expression in an order-sensitive "
            "context; set order depends on PYTHONHASHSEED and insertion "
            "history, so anything event-ordered built from it is unstable"
        ),
        hint="wrap the set in `sorted(...)` before iterating",
    ),
    Rule(
        id="DET002",
        name="id-as-key",
        summary=(
            "`id(...)` call; object ids are allocation addresses — keying a "
            "cache or memo on them breaks across processes and silently "
            "aliases once an object is garbage-collected"
        ),
        hint=(
            "key on a stable identity (conn_id, a frozen dataclass, an "
            "explicit token); for debug-only prints, suppress with "
            "`# repro-lint: disable=DET002`"
        ),
    ),
    Rule(
        id="DET003",
        name="wall-clock-in-sim",
        summary=(
            "wall-clock read in simulation logic; simulated time must come "
            "from the event clock, and timestamps in results break bitwise "
            "reproducibility"
        ),
        hint=(
            "use the simulator's event time, or move timing measurement into "
            "`repro.parallel` / the benchmark layer"
        ),
        applies=_not_timing_infra,
    ),
    Rule(
        id="DET004",
        name="item-accumulation-drift",
        summary=(
            "`+=`/`-=` accumulation whose right-hand side extracts a "
            "scalar via `.item()`; in a bitwise-pinned package the "
            "dtype-laundered Python float can drift from the column "
            "arithmetic it mirrors, so the scalar and vectorized "
            "trajectories silently diverge"
        ),
        hint=(
            "accumulate in the array column itself (or on values read "
            "without `.item()`) so scalar and vector paths share one "
            "float trajectory"
        ),
        applies=_pinned_packages_only,
    ),
    Rule(
        id="ART001",
        name="raw-artifact-write",
        summary=(
            "raw file write (`open(.., 'w')` / `Path.write_*`); a crash "
            "mid-write leaves a truncated artifact that poisons `--resume`"
        ),
        hint=(
            "route the write through `repro.parallel.atomic_write_text` / "
            "`atomic_write_bytes`"
        ),
    ),
    Rule(
        id="FLT001",
        name="float-literal-equality",
        summary=(
            "`==`/`!=` against a non-integral float literal in invariant/"
            "audit code; accumulated float state rarely equals a decimal "
            "literal exactly, so the check is either dead or flaky"
        ),
        hint=(
            "compare against an epsilon (`abs(x - 0.3) < EPSILON`) or an "
            "exactly-representable quantity"
        ),
        applies=_src_only,
    ),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in RULES}

#: Rule ids grouped by family prefix, for `--select RNG` style filters.
FAMILIES: Tuple[str, ...] = ("RNG", "DET", "ART", "FLT")


def expand_rule_selection(tokens: Tuple[str, ...]) -> Tuple[str, ...]:
    """Expand a mix of rule ids and family prefixes into rule ids.

    Raises:
        ValueError: on a token that is neither a rule id nor a family.
    """
    selected = []
    for token in tokens:
        token = token.strip().upper()
        if not token:
            continue
        if token in RULES_BY_ID:
            selected.append(token)
        elif token in FAMILIES:
            selected.extend(r.id for r in RULES if r.id.startswith(token))
        else:
            raise ValueError(f"unknown rule or family: {token!r}")
    return tuple(dict.fromkeys(selected))
