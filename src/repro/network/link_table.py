"""Struct-of-arrays (SoA) link reservation state.

:class:`LinkTable` is the array-backed twin of the per-object
:class:`~repro.network.link_state.LinkState` dictionary world: every
aggregate a :class:`LinkState` maintains as a cached Python float
(``primary_min_total``, ``primary_extra_total``, ``activated_total``,
``backup_reserved``) becomes one preallocated NumPy ``float64`` column
indexed by a **dense link index** (the position of the link in
``topology.links()`` order).  Per-event mutations touch a handful of
scalar cells; the hot *reads* — admission masks over the whole network,
spare-capacity sweeps over redistribution candidates — become single
vectorized expressions instead of per-link property chains.

Bitwise contract (the twin-manager tests pin this): every float the
object core computes is reproduced by the *same* sequence of float
operations.  ``admission_headroom`` is ``((capacity - primary_min) -
backup_reserved) - activated`` exactly as ``LinkState`` evaluates it
left to right; extras are granted by adding the same ``Δ`` in the same
order (NumPy ``ufunc.at`` is unbuffered and applies element operations
in array order).  The backup *multiplexing* bookkeeping — the per-link
``failure link -> demand`` map — stays a dict-of-floats per link: it is
sparse, keyed by topology identity, and only touched on backup
reserve/release, never in the vectorized sweeps.

``check_invariants`` deliberately ignores every maintained column and
recomputes the aggregates from the raw per-connection data handed in by
the caller (the :class:`~repro.channels.conn_table.ConnectionTable`),
then cross-checks the columns against the recomputation — the same
"caches must match a from-scratch sum" discipline the object core's
``LinkState.check_invariants`` applies, at whole-array granularity.

Materialized aggregates (PR 7).  ``spare`` and ``headroom`` hold the
two derived quantities the hot paths interrogate constantly —
``spare_for_extras`` and ``admission_headroom`` — as ready-to-read
float64 columns.  They are *never* updated by adding a delta (which
would be a different float trajectory off the dyadic bandwidth grid);
every mutation site re-evaluates the exact left-to-right defining
expression for just the touched cells (``_refresh_cells``), and bulk
writers that bypass the mutation API (the elastic fill's vectorized
grant/writeback) call :meth:`mark_aggregates_dirty`, after which the
next read triggers a full-column recompute.  Elementwise float64
arithmetic is IEEE-identical whether evaluated per cell, per touched
slice, or over the whole column, so all three refresh granularities
produce bitwise-identical values — ``check_invariants`` asserts the
columns match a from-scratch recompute with ``array_equal`` (no
tolerance) whenever the table claims to be clean.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import AdmissionError, ReservationError, TopologyError
from repro.network.link_state import EPSILON
from repro.topology.graph import LinkId, Network

__all__ = ["LinkTable"]

#: Float column type used for all bandwidth accounting.
_F8 = np.float64


class LinkTable:
    """Dense array-backed reservation state for every link of a topology.

    Attributes:
        link_ids: Link identity of each dense index (topology order).
        index: ``LinkId -> dense index`` mapping.
        capacity: Installed bandwidth per link (Kb/s); mutable only via
            :meth:`set_capacity` (scenario hook).
        primary_min: Sum of primary-minimum reservations per link.
        primary_extra: Sum of granted elastic extras per link.
        activated: Bandwidth consumed by activated backups per link.
        backup_reserved: Multiplexed backup reservation per link (the
            worst single-failure demand).
        spare: Materialized ``spare_for_extras`` per link (see module
            docstring for the refresh protocol).
        headroom: Materialized ``admission_headroom`` per link.
        failed: Boolean failure mask per link.
        backup_demand: Per-link sparse ``failure link -> total backup
            bandwidth`` maps backing the multiplexing rule.
    """

    __slots__ = (
        "link_ids",
        "index",
        "capacity",
        "primary_min",
        "primary_extra",
        "activated",
        "backup_reserved",
        "spare",
        "headroom",
        "failed",
        "failed_py",
        "backup_demand",
        "_num_links",
        "_agg_dirty",
    )

    def __init__(self, topology: Network) -> None:
        links = topology.links()
        n = len(links)
        self._num_links = n
        self.link_ids: List[LinkId] = [link.id for link in links]
        self.index: Dict[LinkId, int] = {lid: i for i, lid in enumerate(self.link_ids)}
        self.capacity = np.array([link.capacity for link in links], dtype=_F8)
        self.primary_min = np.zeros(n, dtype=_F8)
        self.primary_extra = np.zeros(n, dtype=_F8)
        self.activated = np.zeros(n, dtype=_F8)
        self.backup_reserved = np.zeros(n, dtype=_F8)
        self.spare = np.empty(n, dtype=_F8)
        self.headroom = np.empty(n, dtype=_F8)
        self.failed = np.zeros(n, dtype=np.bool_)
        #: Python mirror of ``failed`` for scalar probes: list access is
        #: several times cheaper than a numpy scalar read, and the
        #: fail/repair toggles are the column's only writers.
        self.failed_py: List[bool] = [False] * n
        self.backup_demand: List[Dict[LinkId, float]] = [dict() for _ in range(n)]
        self._agg_dirty = True
        self.refresh_aggregates()

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_links

    def index_of(self, lid: LinkId) -> int:
        """Dense index of ``lid``.

        Raises:
            TopologyError: for a link not present in the topology.
        """
        try:
            return self.index[lid]
        except KeyError:
            raise TopologyError(f"link {lid} is not part of the topology") from None

    def indices_of(self, lids: Sequence[LinkId]) -> np.ndarray:
        """Dense indices of a link-id path (int64 array)."""
        idx = self.index
        return np.array([idx[lid] for lid in lids], dtype=np.int64)

    # ------------------------------------------------------------------
    # materialized-aggregate maintenance
    # ------------------------------------------------------------------
    def mark_aggregates_dirty(self) -> None:
        """Flag the ``spare``/``headroom`` columns stale.

        Bulk writers that mutate base columns directly (the elastic
        fill's vectorized grants and the Python tail's writeback) call
        this instead of tracking per-cell refreshes; the next aggregate
        read recomputes both columns in full.
        """
        self._agg_dirty = True

    def refresh_aggregates(self) -> None:
        """Recompute both materialized columns if flagged stale."""
        if self._agg_dirty:
            self.spare[:] = (
                self.capacity - self.primary_min - self.activated - self.primary_extra
            )
            self.headroom[:] = (
                self.capacity - self.primary_min - self.backup_reserved - self.activated
            )
            self._agg_dirty = False

    def _refresh_cell(self, li: int) -> None:
        """Re-evaluate the defining expressions for one dense index."""
        cm = self.capacity[li] - self.primary_min[li]
        act = self.activated[li]
        self.spare[li] = cm - act - self.primary_extra[li]
        self.headroom[li] = cm - self.backup_reserved[li] - act

    def refresh_cells(self, idx: np.ndarray) -> None:
        """Re-evaluate the defining expressions for touched indices.

        Duplicate indices are harmless: the recompute is idempotent.
        """
        cm = self.capacity[idx] - self.primary_min[idx]
        act = self.activated[idx]
        self.spare[idx] = cm - act - self.primary_extra[idx]
        self.headroom[idx] = cm - self.backup_reserved[idx] - act

    # ------------------------------------------------------------------
    # vectorized aggregate views
    # ------------------------------------------------------------------
    def spare_for_extras(self) -> np.ndarray:
        """Extra-pool headroom per link (full-network vector).

        ``capacity - primary_min - activated - primary_extra`` evaluated
        left to right — the exact expression (and float trajectory) of
        ``LinkState.spare_for_extras`` — served from the materialized
        column.  Returns a copy: callers may mutate base columns next.
        """
        if self._agg_dirty:
            self.refresh_aggregates()
        return self.spare.copy()

    def admission_headroom(self) -> np.ndarray:
        """Guaranteed-commitment headroom per link (invariant 2 view)."""
        if self._agg_dirty:
            self.refresh_aggregates()
        return self.headroom.copy()

    def used(self) -> np.ndarray:
        """Bandwidth actually consumed per link."""
        return self.primary_min + self.primary_extra + self.activated

    def primary_admission_mask(self, b_min: float) -> np.ndarray:
        """Boolean per-link mask of ``LinkState.can_admit_primary``.

        ``True`` where a new primary with minimum ``b_min`` fits: the
        link is alive and ``b_min <= admission_headroom + EPSILON``.
        """
        if self._agg_dirty:
            self.refresh_aggregates()
        return (~self.failed) & (b_min <= self.headroom + EPSILON)

    # ------------------------------------------------------------------
    # scalar reads (compat views, flooding allowances, diagnostics)
    # ------------------------------------------------------------------
    def headroom_at(self, li: int) -> float:
        """Scalar ``admission_headroom`` of one dense index."""
        if self._agg_dirty:
            self.refresh_aggregates()
        return float(self.headroom[li])

    def spare_at(self, li: int) -> float:
        """Scalar ``spare_for_extras`` of one dense index."""
        if self._agg_dirty:
            self.refresh_aggregates()
        return float(self.spare[li])

    # ------------------------------------------------------------------
    # primary path mutations
    # ------------------------------------------------------------------
    def reserve_primary(self, path_idx: np.ndarray, b_min: float) -> None:
        """Reserve a primary's minimum along dense path indices.

        The caller performed the admission test (mask or scalar); a
        violation here is a programming error, mirroring
        ``LinkState.add_primary``.
        """
        if b_min <= 0:
            raise ReservationError(f"primary minimum must be positive, got {b_min}")
        col = self.primary_min
        for li in path_idx:
            col[li] += b_min
        self.refresh_cells(path_idx)

    def release_primary(self, path_idx: np.ndarray, b_min: float, extra: float) -> float:
        """Release a primary (min + its extras); returns bandwidth freed."""
        mins = self.primary_min
        extras = self.primary_extra
        freed = 0.0
        for li in path_idx:
            mins[li] -= b_min
            if extra:
                extras[li] -= extra
            freed += b_min + extra
        self.refresh_cells(path_idx)
        return freed

    def drop_extra(self, path_idx: np.ndarray, extra: float) -> None:
        """Reclaim one connection's extras along its path."""
        if extra:
            col = self.primary_extra
            for li in path_idx:
                col[li] -= extra
            self.refresh_cells(path_idx)

    def reclaim_extras(self, flat_idx: np.ndarray, amounts: np.ndarray) -> None:
        """Subtract per-entry extras at (possibly repeated) dense indices.

        ``np.add.at`` is unbuffered and applies the subtractions in
        array order — the same scalar trajectory as a Python loop over
        ``(flat_idx, amounts)`` pairs — so batched reclamation stays
        bitwise-equal to the object core's per-channel ``drop_extra``.
        """
        np.add.at(self.primary_extra, flat_idx, -amounts)
        self.refresh_cells(flat_idx)

    def add_primary_min(self, path_idx: np.ndarray, b_min: float) -> None:
        """Bulk-reserve a primary minimum along unique dense indices.

        Fancy-indexed ``+=`` over a simple path (no repeated links) is
        one independent scalar add per cell — the same float trajectory
        as the object core's per-link loop.
        """
        self.primary_min[path_idx] += b_min
        self.refresh_cells(path_idx)

    def sub_primary_min(self, path_idx: np.ndarray, b_min: float) -> None:
        """Roll back a bulk reserve (backup-admission rejection path)."""
        self.primary_min[path_idx] -= b_min
        self.refresh_cells(path_idx)

    def release_primary_bulk(
        self, path_idx: np.ndarray, b_min: float, extra: float
    ) -> None:
        """Vectorized primary release (termination / failure victims)."""
        self.primary_min[path_idx] -= b_min
        if extra:
            self.primary_extra[path_idx] -= extra
        self.refresh_cells(path_idx)

    def sub_activated(self, path_idx: np.ndarray, b_min: float) -> None:
        """Vectorized release of an activated backup along its path."""
        self.activated[path_idx] -= b_min
        self.refresh_cells(path_idx)

    # ------------------------------------------------------------------
    # backup reservations (multiplexed)
    # ------------------------------------------------------------------
    def backup_reserved_with(
        self, li: int, b_min: float, primary_links: FrozenSet[LinkId]
    ) -> float:
        """Reservation link ``li`` would need after adding this backup."""
        worst = float(self.backup_reserved[li])
        demand = self.backup_demand[li]
        for f in primary_links:
            cand = demand.get(f, 0.0) + b_min
            if cand > worst:
                worst = cand
        return worst

    def can_admit_backup(
        self, li: int, b_min: float, primary_links: FrozenSet[LinkId]
    ) -> bool:
        """Scalar twin of ``LinkState.can_admit_backup`` (invariant 2)."""
        if self.failed_py[li]:
            return False
        growth = self.backup_reserved_with(li, b_min, primary_links) - float(
            self.backup_reserved[li]
        )
        return growth <= self.headroom_at(li) + EPSILON

    def can_admit_backup_bulk(
        self, idx: np.ndarray, b_min: float, primary_links: FrozenSet[LinkId]
    ) -> bool:
        """Whether every link in ``idx`` admits this backup.

        Same per-link arithmetic and comparisons as
        :meth:`can_admit_backup` (the ``max`` over conflict demands is
        order-free), with one aggregate refresh and the column/method
        lookups hoisted out of the per-link loop — paths are short, so
        hoisted scalar reads beat building gather arrays.
        """
        self.refresh_aggregates()
        failed = self.failed_py
        reserved = self.backup_reserved
        headroom = self.headroom
        demands = self.backup_demand
        for li in idx.tolist():
            if failed[li]:
                return False
            base = float(reserved[li])
            worst = base
            demand = demands[li]
            for f in primary_links:
                cand = demand.get(f, 0.0) + b_min
                if cand > worst:
                    worst = cand
            if worst - base > float(headroom[li]) + EPSILON:
                return False
        return True

    def add_backup(
        self, li: int, b_min: float, primary_links: FrozenSet[LinkId]
    ) -> None:
        """Fold one backup into link ``li``'s multiplexed reservation."""
        if not primary_links:
            raise ReservationError("backup has an empty primary-conflict set")
        demand = self.backup_demand[li]
        worst = float(self.backup_reserved[li])
        for f in primary_links:
            new_demand = demand.get(f, 0.0) + b_min
            demand[f] = new_demand
            if new_demand > worst:
                worst = new_demand
        self.backup_reserved[li] = worst
        self._refresh_cell(li)

    def remove_backup(
        self, li: int, b_min: float, primary_links: FrozenSet[LinkId]
    ) -> None:
        """Drop one backup's share from link ``li``'s reservation."""
        demand = self.backup_demand[li]
        reserved = float(self.backup_reserved[li])
        recompute = False
        for f in primary_links:
            old = demand[f]
            remaining = old - b_min
            if old >= reserved - EPSILON:
                recompute = True
            if remaining <= EPSILON:
                del demand[f]
            else:
                demand[f] = remaining
        if recompute:
            self.backup_reserved[li] = max(demand.values(), default=0.0)
            self._refresh_cell(li)

    # ------------------------------------------------------------------
    # backup activation
    # ------------------------------------------------------------------
    def can_activate_backup(self, li: int, b_min: float) -> bool:
        """Whether ``b_min`` fits as live bandwidth on ``li`` right now."""
        if self.failed_py[li]:
            return False
        return (
            float(self.primary_min[li]) + float(self.activated[li]) + b_min
            <= float(self.capacity[li]) + EPSILON
        )

    def activate_backup(
        self, li: int, b_min: float, primary_links: FrozenSet[LinkId]
    ) -> None:
        """Turn an inactive backup into live bandwidth on ``li``."""
        if not self.can_activate_backup(li, b_min):
            raise AdmissionError(
                f"backup no longer fits on link {self.link_ids[li]}"
            )
        self.remove_backup(li, b_min, primary_links)
        self.activated[li] += b_min
        self._refresh_cell(li)

    def release_activated(self, li: int, b_min: float) -> None:
        """Release a live (previously activated) backup channel."""
        self.activated[li] -= b_min
        self._refresh_cell(li)

    # ------------------------------------------------------------------
    # capacity mutation (scenario hook)
    # ------------------------------------------------------------------
    def set_capacity(self, li: int, capacity: float) -> None:
        """Change the installed bandwidth of one link.

        A scenario-authoring hook (capacity upgrades/degradations); the
        owner of any route cache must bump its generation afterwards,
        because cached plans embed load-dependent admission decisions.

        Raises:
            ReservationError: for a non-positive capacity or one below
                the link's current usage or guaranteed commitments.
        """
        if capacity <= 0:
            raise ReservationError(f"link capacity must be positive, got {capacity}")
        used = float(
            self.primary_min[li] + self.primary_extra[li] + self.activated[li]
        )
        committed = float(
            self.primary_min[li] + self.backup_reserved[li] + self.activated[li]
        )
        if max(used, committed) > capacity + EPSILON:
            raise ReservationError(
                f"link {self.link_ids[li]}: new capacity {capacity} is below "
                f"current commitments {max(used, committed):.3f}"
            )
        self.capacity[li] = capacity
        self._refresh_cell(li)

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def fail(self, li: int) -> None:
        """Mark a dense index failed (double failure is a caller bug)."""
        if self.failed_py[li]:
            raise ReservationError(f"link {self.link_ids[li]} is already failed")
        self.failed[li] = True
        self.failed_py[li] = True

    def repair(self, li: int) -> None:
        """Return a failed dense index to service."""
        if not self.failed_py[li]:
            raise ReservationError(f"link {self.link_ids[li]} is not failed")
        self.failed[li] = False
        self.failed_py[li] = False

    # ------------------------------------------------------------------
    # invariants: full-array cross-check from raw per-connection data
    # ------------------------------------------------------------------
    def check_invariants(
        self,
        primary_contribs: Iterable[Tuple[np.ndarray, float, float]],
        backup_contribs: Iterable[Tuple[np.ndarray, float, FrozenSet[LinkId]]],
        activated_contribs: Iterable[Tuple[np.ndarray, float]],
        strict_reservation: bool = True,
    ) -> None:
        """Recompute every column from raw connection data and cross-check.

        Args:
            primary_contribs: ``(path indices, b_min, extra)`` of every
                live primary channel.
            backup_contribs: ``(path indices, b_min, conflict set)`` of
                every inactive backup reservation.
            activated_contribs: ``(path indices, b_min)`` of every
                activated (live) backup channel.
            strict_reservation: Also check invariant 2; disable after
                failures, where multiplexed reservations only cover the
                first failure.

        Raises:
            ReservationError: when a recomputed aggregate disagrees with
                its maintained column or a capacity invariant fails.
        """
        if self.failed_py != self.failed.tolist():
            raise ReservationError("failed_py mirror out of sync with column")
        n = self._num_links
        min_ref = np.zeros(n, dtype=_F8)
        extra_ref = np.zeros(n, dtype=_F8)
        act_ref = np.zeros(n, dtype=_F8)
        demand_ref: List[Dict[LinkId, float]] = [dict() for _ in range(n)]
        for path_idx, b_min, extra in primary_contribs:
            np.add.at(min_ref, path_idx, b_min)
            if extra < -EPSILON:
                raise ReservationError("negative extra grant")
            if extra:
                np.add.at(extra_ref, path_idx, extra)
        for path_idx, b_min, conflict in backup_contribs:
            for li in path_idx:
                demand = demand_ref[int(li)]
                for f in conflict:
                    demand[f] = demand.get(f, 0.0) + b_min
        for path_idx, b_min in activated_contribs:
            np.add.at(act_ref, path_idx, b_min)
        reserved_ref = np.array(
            [max(d.values(), default=0.0) for d in demand_ref], dtype=_F8
        )
        for name, column, ref in (
            ("primary_min", self.primary_min, min_ref),
            ("primary_extra", self.primary_extra, extra_ref),
            ("activated", self.activated, act_ref),
            ("backup_reserved", self.backup_reserved, reserved_ref),
        ):
            bad = np.flatnonzero(np.abs(column - ref) > EPSILON)
            if bad.size:
                li = int(bad[0])
                raise ReservationError(
                    f"link {self.link_ids[li]}: {name} column "
                    f"{float(column[li])} != recomputed {float(ref[li])}"
                )
        for li, demand in enumerate(demand_ref):
            maintained = self.backup_demand[li]
            for f, expected in demand.items():
                if abs(maintained.get(f, 0.0) - expected) > EPSILON:
                    raise ReservationError(
                        f"link {self.link_ids[li]}: backup demand for "
                        f"failure {f} out of sync"
                    )
        if not self._agg_dirty:
            spare_ref = (
                self.capacity - self.primary_min - self.activated - self.primary_extra
            )
            head_ref = (
                self.capacity - self.primary_min - self.backup_reserved - self.activated
            )
            # Bitwise, not tolerance-based: a clean table's materialized
            # columns are the same expression over the same operands.
            if not np.array_equal(self.spare, spare_ref):
                li = int(np.flatnonzero(self.spare != spare_ref)[0])
                raise ReservationError(
                    f"link {self.link_ids[li]}: materialized spare "
                    f"{float(self.spare[li])!r} != {float(spare_ref[li])!r}"
                )
            if not np.array_equal(self.headroom, head_ref):
                li = int(np.flatnonzero(self.headroom != head_ref)[0])
                raise ReservationError(
                    f"link {self.link_ids[li]}: materialized headroom "
                    f"{float(self.headroom[li])!r} != {float(head_ref[li])!r}"
                )
        over = np.flatnonzero(self.used() > self.capacity + EPSILON)
        if over.size:
            li = int(over[0])
            raise ReservationError(
                f"link {self.link_ids[li]}: usage {float(self.used()[li]):.3f} "
                f"exceeds capacity {float(self.capacity[li])}"
            )
        if strict_reservation:
            committed = self.primary_min + self.backup_reserved + self.activated
            over = np.flatnonzero(committed > self.capacity + EPSILON)
            if over.size:
                li = int(over[0])
                raise ReservationError(
                    f"link {self.link_ids[li]}: commitments "
                    f"{float(committed[li]):.3f} exceed capacity "
                    f"{float(self.capacity[li])}"
                )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Bytes held by the NumPy columns (memory benchmark hook)."""
        return int(
            self.capacity.nbytes
            + self.primary_min.nbytes
            + self.primary_extra.nbytes
            + self.activated.nbytes
            + self.backup_reserved.nbytes
            + self.spare.nbytes
            + self.headroom.nbytes
            + self.failed.nbytes
        )
