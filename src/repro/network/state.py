"""Network-wide resource state: all links' reservations plus failures.

:class:`NetworkState` owns one :class:`~repro.network.link_state.LinkState`
per topology link and provides *path-level* operations that keep the
per-link bookkeeping consistent: path admission tests, atomic
reserve/release of primary and backup paths, extras reclamation, backup
activation, and link failure/repair.  The channel-level orchestration
(which connection maps to which paths, redistribution policy, Markov
statistics) lives one layer up in :mod:`repro.channels.manager`.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ReservationError, TopologyError
from repro.network.link_state import EPSILON, LinkState
from repro.topology.graph import LinkId, Network

#: One state-adjacency row: ``(neighbor, link_id, link_state)`` triples,
#: sorted by neighbor — the routing hot loops' view of the network.
StateAdjacencyRow = List[Tuple[int, LinkId, LinkState]]


class NetworkState:
    """Mutable reservation state over an immutable topology."""

    def __init__(self, topology: Network) -> None:
        self.topology = topology
        self._links: Dict[LinkId, LinkState] = {
            link.id: LinkState(link=link.id, capacity=link.capacity)
            for link in topology.links()
        }
        self._failed: Set[LinkId] = set()
        #: Sorted alive/failed link-id lists, maintained incrementally on
        #: every fail/repair so per-event consumers (failure victim
        #: selection, repair selection, fault injectors) never rescan the
        #: whole link table.  Order matches a from-scratch ``sorted()``
        #: at all times, which keeps victim picks bitwise deterministic.
        self._alive_list: List[LinkId] = sorted(self._links)
        self._failed_list: List[LinkId] = []
        #: Bumped on every fail/repair; versions anything derived from
        #: the *live* topology (e.g. cached candidate routes).
        self.generation: int = 0
        self._rows_cache: Optional[Dict[int, StateAdjacencyRow]] = None
        self._rows_version: int = -1

    # ------------------------------------------------------------------
    # link access
    # ------------------------------------------------------------------
    def link(self, lid: LinkId) -> LinkState:
        """The :class:`LinkState` of ``lid``.

        Raises:
            TopologyError: for a link not present in the topology.
        """
        try:
            return self._links[lid]
        except KeyError:
            raise TopologyError(f"link {lid} is not part of the topology") from None

    def links(self) -> Iterable[LinkState]:
        """All link states (topology order)."""
        return self._links.values()

    def adjacency_rows(self) -> Dict[int, StateAdjacencyRow]:
        """Compact adjacency with live state: node -> ``[(nbr, lid, state)]``.

        Mirrors :meth:`Network.adjacency_rows` but carries each link's
        :class:`LinkState` so admission-aware searches test capacity and
        liveness without a per-edge ``state.link(lid)`` dict lookup.
        The :class:`LinkState` objects are the live ones — mutations
        (reservations, failures) are visible without a rebuild; only
        structural topology changes trigger one.  Treat as read-only.
        """
        if self._rows_cache is None or self._rows_version != self.topology.version:
            self._rows_cache = {
                node: [(nbr, lid, self._links[lid]) for nbr, lid, _link in row]
                for node, row in self.topology.adjacency_rows().items()
            }
            self._rows_version = self.topology.version
        return self._rows_cache

    @property
    def failed_links(self) -> FrozenSet[LinkId]:
        """Currently failed links."""
        return frozenset(self._failed)

    def is_failed(self, lid: LinkId) -> bool:
        """Whether ``lid`` is currently failed."""
        return lid in self._failed

    def alive_link_list(self) -> Sequence[LinkId]:
        """Sorted ids of all alive links (maintained incrementally).

        The returned list is the live internal structure — treat as
        read-only; it mutates on the next fail/repair.
        """
        return self._alive_list

    def failed_link_list(self) -> Sequence[LinkId]:
        """Sorted ids of all failed links (maintained incrementally).

        Same read-only contract as :meth:`alive_link_list`.
        """
        return self._failed_list

    @property
    def num_alive(self) -> int:
        """Number of currently alive links."""
        return len(self._alive_list)

    @property
    def num_failed(self) -> int:
        """Number of currently failed links."""
        return len(self._failed_list)

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def fail_link(self, lid: LinkId) -> None:
        """Mark a link as failed.  Idempotent bookkeeping is rejected to
        surface double-failure bugs in workloads."""
        state = self.link(lid)
        if state.failed:
            raise ReservationError(f"link {lid} is already failed")
        state.failed = True
        self._failed.add(lid)
        self._alive_list.pop(bisect_left(self._alive_list, lid))
        insort(self._failed_list, lid)
        self.generation += 1

    def repair_link(self, lid: LinkId) -> None:
        """Return a failed link to service."""
        state = self.link(lid)
        if not state.failed:
            raise ReservationError(f"link {lid} is not failed")
        state.failed = False
        self._failed.discard(lid)
        self._failed_list.pop(bisect_left(self._failed_list, lid))
        insort(self._alive_list, lid)
        self.generation += 1

    def path_is_alive(self, path_links: Sequence[LinkId]) -> bool:
        """Whether no link of ``path_links`` is failed."""
        return not any(lid in self._failed for lid in path_links)

    # ------------------------------------------------------------------
    # primary path operations
    # ------------------------------------------------------------------
    def can_admit_primary_path(self, path_links: Sequence[LinkId], b_min: float) -> bool:
        """Admission test: ``b_min`` fits on every link of the path."""
        return all(self.link(lid).can_admit_primary(b_min) for lid in path_links)

    def reserve_primary_path(
        self, conn_id: int, path_links: Sequence[LinkId], b_min: float
    ) -> None:
        """Atomically reserve a primary's minimum along its path.

        On any per-link failure the partial reservation is rolled back
        before the error propagates.
        """
        done: List[LinkId] = []
        try:
            for lid in path_links:
                self.link(lid).add_primary(conn_id, b_min)
                done.append(lid)
        except Exception:
            for lid in done:
                self.link(lid).remove_primary(conn_id)
            raise

    def release_primary_path(self, conn_id: int, path_links: Sequence[LinkId]) -> float:
        """Release a primary along its path; returns total bandwidth freed."""
        freed = 0.0
        for lid in path_links:
            freed += self.link(lid).remove_primary(conn_id)
        return freed

    def drop_extras_of(self, conn_id: int, path_links: Sequence[LinkId]) -> List[LinkId]:
        """Reclaim one connection's extras everywhere on its path.

        Returns the links where bandwidth was actually freed (the
        redistribution frontier).
        """
        affected: List[LinkId] = []
        link = self.link
        for lid in path_links:
            # Inlined LinkState.drop_extra: this runs for every link of
            # every directly-chained channel on every event, and the
            # method-call version showed up in event-rate profiles.
            ls = link(lid)
            freed = ls.primary_extra.get(conn_id)
            if freed is None:
                raise ReservationError(
                    f"connection {conn_id} has no primary on {ls.link}"
                )
            if freed:
                ls.primary_extra[conn_id] = 0.0
                ls._extra_total -= freed
                if freed > EPSILON:
                    affected.append(lid)
        return affected

    def primary_level_bandwidth(self, conn_id: int, path_links: Sequence[LinkId]) -> float:
        """Total bandwidth (min + extra) the primary holds on its path.

        By construction every link of a path carries the same value for
        one connection; the first link is authoritative and the rest are
        asserted to agree (cheap corruption tripwire).
        """
        if not path_links:
            raise ReservationError(f"connection {conn_id} has an empty path")
        first = self.link(path_links[0])
        value = first.primary_min[conn_id] + first.primary_extra[conn_id]
        for lid in path_links[1:]:
            state = self.link(lid)
            other = state.primary_min[conn_id] + state.primary_extra[conn_id]
            if abs(other - value) > EPSILON:
                raise ReservationError(
                    f"connection {conn_id} holds inconsistent bandwidth on its path: "
                    f"{value} on {path_links[0]} vs {other} on {lid}"
                )
        return value

    # ------------------------------------------------------------------
    # backup path operations
    # ------------------------------------------------------------------
    def can_admit_backup_path(
        self,
        path_links: Sequence[LinkId],
        b_min: float,
        primary_links: FrozenSet[LinkId],
    ) -> bool:
        """Admission test for an inactive backup along ``path_links``."""
        return all(
            self.link(lid).can_admit_backup(b_min, primary_links) for lid in path_links
        )

    def reserve_backup_path(
        self,
        conn_id: int,
        path_links: Sequence[LinkId],
        b_min: float,
        primary_links: FrozenSet[LinkId],
    ) -> None:
        """Atomically reserve a (multiplexed) backup along its path."""
        done: List[LinkId] = []
        try:
            for lid in path_links:
                self.link(lid).add_backup(conn_id, b_min, primary_links)
                done.append(lid)
        except Exception:
            for lid in done:
                self.link(lid).remove_backup(conn_id)
            raise

    def release_backup_path(self, conn_id: int, path_links: Sequence[LinkId]) -> None:
        """Drop an inactive backup's reservation along its path."""
        for lid in path_links:
            self.link(lid).remove_backup(conn_id)

    def can_activate_backup_path(self, conn_id: int, path_links: Sequence[LinkId]) -> bool:
        """Whether the backup can become live on every link of its path."""
        return all(self.link(lid).can_activate_backup(conn_id) for lid in path_links)

    def activate_backup_path(self, conn_id: int, path_links: Sequence[LinkId]) -> None:
        """Atomically turn an inactive backup into a live channel."""
        if not path_links:
            raise ReservationError(f"connection {conn_id} has an empty backup path")
        first = self.link(path_links[0])
        if conn_id not in first.backup_members:
            raise ReservationError(f"connection {conn_id} has no backup on {path_links[0]}")
        b_min, primary_links = first.backup_members[conn_id]
        done: List[LinkId] = []
        try:
            for lid in path_links:
                self.link(lid).activate_backup(conn_id)
                done.append(lid)
        except Exception:
            for lid in done:
                state = self.link(lid)
                state.release_activated(conn_id)
                # Put the reservation back so the caller can retry/teardown.
                state.add_backup(conn_id, b_min, primary_links)
            raise

    def release_activated_path(self, conn_id: int, path_links: Sequence[LinkId]) -> float:
        """Release a live activated backup; returns bandwidth freed."""
        freed = 0.0
        for lid in path_links:
            freed += self.link(lid).release_activated(conn_id)
        return freed

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self, strict_reservation: bool = True) -> None:
        """Check every link's invariants (see :class:`LinkState`)."""
        for state in self._links.values():
            state.check_invariants(strict_reservation=strict_reservation)

    def total_used(self) -> float:
        """Bandwidth consumed across the whole network (diagnostics)."""
        return sum(state.used for state in self._links.values())

    def total_capacity(self) -> float:
        """Total bandwidth installed across the whole network."""
        return sum(state.capacity for state in self._links.values())

    def utilization(self) -> float:
        """Fraction of installed bandwidth currently consumed."""
        cap = self.total_capacity()
        return self.total_used() / cap if cap > 0 else 0.0
