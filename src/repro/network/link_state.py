"""Per-link resource accounting for DR-connections.

Each link tracks four kinds of bandwidth commitment, mirroring §2.1.2
and §3.1 of the paper:

* **primary minimum** — the guaranteed ``B_min`` of every primary
  channel routed through the link;
* **primary extra** — elastic bandwidth above the minimum, granted at
  run time from spare capacity (*including* capacity that is only
  reserved — not consumed — by inactive backups: the paper's central
  efficiency argument);
* **backup reservation** — capacity promised to inactive backup
  channels.  Backups are *multiplexed* (overbooked): the reservation
  only needs to cover the worst single link failure, i.e.
  ``max over failure links f of Σ B_min of backups on this link whose
  primary traverses f``;
* **activated backups** — backups that have been turned into live
  channels after a failure; these consume real bandwidth (at ``B_min``,
  which "remain[s] unchanged for backups").

Two invariants follow (DESIGN.md §6):

1. usage:       ``primary_min + primary_extra + activated <= capacity``
2. reservation: ``primary_min + backup_reserved + activated <= capacity``

Invariant 2 is enforced at every admission; after a failure it can be
transiently violated for *future* failures (multiplexed backups protect
against a single failure, as the paper notes), in which case a later
activation that no longer fits is refused and the connection is dropped
by the manager.

All aggregate quantities are maintained incrementally (O(1) reads):
redistribution interrogates ``spare_for_extras`` and
``admission_headroom`` millions of times per simulation, so recomputing
sums on demand would dominate the run time.  ``check_invariants``
recomputes everything from scratch and cross-checks the caches, so the
test suite would catch any drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Tuple

from repro.errors import AdmissionError, ReservationError
from repro.topology.graph import LinkId

#: Numerical slack for capacity comparisons.  All paper bandwidths are
#: exact binary floats (multiples of 50 Kb/s), so this only guards
#: against pathological user inputs.
EPSILON: float = 1e-6


@dataclass
class LinkState:
    """Mutable reservation state of one link.

    Attributes:
        link: Canonical link identifier.
        capacity: Total bandwidth of the link (Kb/s).
        failed: Whether the link is currently failed.
    """

    link: LinkId
    capacity: float
    failed: bool = False

    #: conn_id -> reserved minimum bandwidth of the primary channel.
    primary_min: Dict[int, float] = field(default_factory=dict)
    #: conn_id -> extra (elastic) bandwidth currently granted on top.
    primary_extra: Dict[int, float] = field(default_factory=dict)
    #: conn_id -> (b_min, primary links) of each inactive backup here.
    backup_members: Dict[int, Tuple[float, FrozenSet[LinkId]]] = field(default_factory=dict)
    #: failure link f -> total backup bandwidth activated here if f fails.
    backup_demand: Dict[LinkId, float] = field(default_factory=dict)
    #: conn_id -> bandwidth of an activated (live) backup channel.
    activated: Dict[int, float] = field(default_factory=dict)

    # cached aggregates (kept in sync by every mutator)
    _min_total: float = 0.0
    _extra_total: float = 0.0
    _activated_total: float = 0.0
    _backup_reserved: float = 0.0

    # ------------------------------------------------------------------
    # aggregate views (O(1))
    # ------------------------------------------------------------------
    @property
    def primary_min_total(self) -> float:
        """Sum of all primary minimum reservations."""
        return self._min_total

    @property
    def primary_extra_total(self) -> float:
        """Sum of all elastic extras currently granted."""
        return self._extra_total

    @property
    def activated_total(self) -> float:
        """Bandwidth consumed by activated backup channels."""
        return self._activated_total

    @property
    def backup_reserved(self) -> float:
        """Multiplexed backup reservation: worst single-failure demand."""
        return self._backup_reserved

    @property
    def used(self) -> float:
        """Bandwidth actually consumed right now."""
        return self._min_total + self._extra_total + self._activated_total

    @property
    def extra_pool(self) -> float:
        """Capacity available to elastic extras (may borrow backup reservation)."""
        return self.capacity - self._min_total - self._activated_total

    @property
    def spare_for_extras(self) -> float:
        """Extra-pool headroom not yet granted to any channel."""
        return self.capacity - self._min_total - self._activated_total - self._extra_total

    @property
    def admission_headroom(self) -> float:
        """Bandwidth a *new guaranteed commitment* (primary min or larger
        backup reservation) may still claim without breaking invariant 2."""
        return self.capacity - self._min_total - self._backup_reserved - self._activated_total

    def channels(self) -> Iterable[int]:
        """Connection ids of all primaries routed through this link."""
        return self.primary_min.keys()

    # ------------------------------------------------------------------
    # primary channels
    # ------------------------------------------------------------------
    def can_admit_primary(self, b_min: float) -> bool:
        """Whether a new primary with minimum ``b_min`` fits (invariant 2)."""
        return not self.failed and b_min <= self.admission_headroom + EPSILON

    def add_primary(self, conn_id: int, b_min: float) -> None:
        """Reserve the minimum bandwidth of a new primary channel.

        The caller is responsible for having cleared enough extras
        (reclamation) and for the admission test; a violation here is a
        programming error and raises.
        """
        if conn_id in self.primary_min:
            raise ReservationError(f"connection {conn_id} already has a primary on {self.link}")
        if b_min <= 0:
            raise ReservationError(f"primary minimum must be positive, got {b_min}")
        if b_min > self.admission_headroom + EPSILON:
            raise AdmissionError(
                f"primary of connection {conn_id} ({b_min} Kb/s) overcommits link "
                f"{self.link}: headroom {self.admission_headroom:.3f}"
            )
        if self.used + b_min > self.capacity + EPSILON:
            raise AdmissionError(
                f"primary of connection {conn_id} would exceed usage capacity on {self.link}"
            )
        self.primary_min[conn_id] = b_min
        self.primary_extra[conn_id] = 0.0
        self._min_total += b_min

    def remove_primary(self, conn_id: int) -> float:
        """Release a primary channel; returns the bandwidth freed."""
        if conn_id not in self.primary_min:
            raise ReservationError(f"connection {conn_id} has no primary on {self.link}")
        b_min = self.primary_min.pop(conn_id)
        extra = self.primary_extra.pop(conn_id)
        self._min_total -= b_min
        self._extra_total -= extra
        return b_min + extra

    def has_primary(self, conn_id: int) -> bool:
        """Whether ``conn_id``'s primary traverses this link."""
        return conn_id in self.primary_min

    def extra_of(self, conn_id: int) -> float:
        """Extra bandwidth currently granted to ``conn_id`` here."""
        try:
            return self.primary_extra[conn_id]
        except KeyError:
            raise ReservationError(f"connection {conn_id} has no primary on {self.link}") from None

    def grant_extra(self, conn_id: int, amount: float) -> None:
        """Grant ``amount`` of additional elastic bandwidth to a primary."""
        if conn_id not in self.primary_extra:
            raise ReservationError(f"connection {conn_id} has no primary on {self.link}")
        if amount <= 0:
            raise ReservationError(f"extra grant must be positive, got {amount}")
        if amount > self.spare_for_extras + EPSILON:
            raise AdmissionError(
                f"extra grant of {amount} to connection {conn_id} exceeds spare "
                f"{self.spare_for_extras:.3f} on link {self.link}"
            )
        self.primary_extra[conn_id] += amount
        self._extra_total += amount

    def drop_extra(self, conn_id: int) -> float:
        """Reclaim all extra bandwidth of one primary; returns the amount."""
        if conn_id not in self.primary_extra:
            raise ReservationError(f"connection {conn_id} has no primary on {self.link}")
        freed = self.primary_extra[conn_id]
        if freed:
            self.primary_extra[conn_id] = 0.0
            self._extra_total -= freed
        return freed

    def drop_all_extras(self) -> float:
        """Reclaim every extra on this link; returns the total freed."""
        freed = self._extra_total
        if freed:
            for conn_id in self.primary_extra:
                self.primary_extra[conn_id] = 0.0
            self._extra_total = 0.0
        return freed

    # ------------------------------------------------------------------
    # backup channels
    # ------------------------------------------------------------------
    def backup_reserved_with(self, b_min: float, primary_links: FrozenSet[LinkId]) -> float:
        """Backup reservation this link would need after adding a backup.

        Multiplexing rule: the new backup only increases the reservation
        if some single failure would now activate more backup bandwidth
        here than the current worst case.
        """
        worst = self._backup_reserved
        demand = self.backup_demand
        for f in primary_links:
            cand = demand.get(f, 0.0) + b_min
            if cand > worst:
                worst = cand
        return worst

    def can_admit_backup(self, b_min: float, primary_links: FrozenSet[LinkId]) -> bool:
        """Whether a backup fits here, given its primary's path (invariant 2)."""
        if self.failed:
            return False
        growth = self.backup_reserved_with(b_min, primary_links) - self._backup_reserved
        return growth <= self.admission_headroom + EPSILON

    def add_backup(self, conn_id: int, b_min: float, primary_links: FrozenSet[LinkId]) -> None:
        """Reserve (multiplexed) capacity for an inactive backup channel."""
        if conn_id in self.backup_members:
            raise ReservationError(f"connection {conn_id} already has a backup on {self.link}")
        if not primary_links:
            raise ReservationError(f"backup of connection {conn_id} has an empty primary path")
        if not self.can_admit_backup(b_min, primary_links):
            raise AdmissionError(f"backup of connection {conn_id} overcommits link {self.link}")
        self.backup_members[conn_id] = (b_min, primary_links)
        worst = self._backup_reserved
        for f in primary_links:
            new_demand = self.backup_demand.get(f, 0.0) + b_min
            self.backup_demand[f] = new_demand
            if new_demand > worst:
                worst = new_demand
        self._backup_reserved = worst

    def remove_backup(self, conn_id: int) -> None:
        """Drop an inactive backup's reservation share."""
        try:
            b_min, primary_links = self.backup_members.pop(conn_id)
        except KeyError:
            raise ReservationError(f"connection {conn_id} has no backup on {self.link}") from None
        recompute = False
        for f in primary_links:
            old = self.backup_demand[f]
            remaining = old - b_min
            if old >= self._backup_reserved - EPSILON:
                recompute = True
            if remaining <= EPSILON:
                del self.backup_demand[f]
            else:
                self.backup_demand[f] = remaining
        if recompute:
            self._backup_reserved = max(self.backup_demand.values(), default=0.0)

    def has_backup(self, conn_id: int) -> bool:
        """Whether ``conn_id``'s inactive backup traverses this link."""
        return conn_id in self.backup_members

    def can_activate_backup(self, conn_id: int) -> bool:
        """Whether the backup fits as live bandwidth right now.

        Extras do not block activation — the manager reclaims them
        first — so the test is against minimums plus other activations.
        """
        if self.failed or conn_id not in self.backup_members:
            return False
        b_min, _ = self.backup_members[conn_id]
        return self._min_total + self._activated_total + b_min <= self.capacity + EPSILON

    def activate_backup(self, conn_id: int) -> float:
        """Turn an inactive backup into a live channel; returns its bandwidth.

        The caller must have verified :meth:`can_activate_backup` on the
        whole backup path and reclaimed extras as needed.
        """
        try:
            b_min, primary_links = self.backup_members[conn_id]
        except KeyError:
            raise ReservationError(f"connection {conn_id} has no backup on {self.link}") from None
        if self._min_total + self._activated_total + b_min > self.capacity + EPSILON:
            raise AdmissionError(
                f"backup of connection {conn_id} no longer fits on link {self.link}"
            )
        self.remove_backup(conn_id)
        self.activated[conn_id] = b_min
        self._activated_total += b_min
        return b_min

    def release_activated(self, conn_id: int) -> float:
        """Release a live (previously activated) backup channel."""
        try:
            bw = self.activated.pop(conn_id)
        except KeyError:
            raise ReservationError(
                f"connection {conn_id} has no activated backup on {self.link}"
            ) from None
        self._activated_total -= bw
        return bw

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_invariants(self, strict_reservation: bool = True) -> None:
        """Verify capacity invariants and cache consistency.

        Args:
            strict_reservation: Also check invariant 2 (reservation);
                disable after failures, where multiplexed reservations
                are only guaranteed for the first failure.

        Raises:
            ReservationError: when an invariant or a cache is violated.
        """
        min_total = sum(self.primary_min.values())
        extra_total = sum(self.primary_extra.values())
        activated_total = sum(self.activated.values())
        reserved = max(self.backup_demand.values(), default=0.0)
        for name, cached, actual in (
            ("min", self._min_total, min_total),
            ("extra", self._extra_total, extra_total),
            ("activated", self._activated_total, activated_total),
            ("backup_reserved", self._backup_reserved, reserved),
        ):
            if abs(cached - actual) > EPSILON:
                raise ReservationError(
                    f"link {self.link}: cached {name} total {cached} != actual {actual}"
                )
        demand_from_members: Dict[LinkId, float] = {}
        for b_min, primary_links in self.backup_members.values():
            for f in primary_links:
                demand_from_members[f] = demand_from_members.get(f, 0.0) + b_min
        for f, expected in demand_from_members.items():
            if abs(self.backup_demand.get(f, 0.0) - expected) > EPSILON:
                raise ReservationError(
                    f"link {self.link}: backup demand for failure {f} out of sync"
                )
        if self.used > self.capacity + EPSILON:
            raise ReservationError(
                f"link {self.link}: usage {self.used:.3f} exceeds capacity {self.capacity}"
            )
        if any(extra < -EPSILON for extra in self.primary_extra.values()):
            raise ReservationError(f"link {self.link}: negative extra grant")
        if set(self.primary_extra) != set(self.primary_min):
            raise ReservationError(f"link {self.link}: extra/min bookkeeping out of sync")
        if strict_reservation:
            committed = min_total + reserved + activated_total
            if committed > self.capacity + EPSILON:
                raise ReservationError(
                    f"link {self.link}: commitments {committed:.3f} exceed capacity "
                    f"{self.capacity}"
                )
