"""Run-time resource accounting: per-link and network-wide reservations."""

from __future__ import annotations

from repro.network.link_state import EPSILON, LinkState
from repro.network.state import NetworkState

__all__ = ["EPSILON", "LinkState", "NetworkState"]
