"""Generation-invalidated candidate-route cache.

Route selection is the dominant cost of connection establishment: every
arrival runs an admission-filtered BFS for the primary and another for
the disjoint backup.  But the *raw* topology those searches run over
only changes on ``fail_link``/``repair_link`` — arrivals and
terminations change load, not connectivity.  This cache exploits that:

* per ``(source, destination)`` pair it lazily enumerates the raw
  live-topology candidate routes in ``(hops, node-sequence)`` order
  (Yen's, via :func:`repro.routing.ksp.paths_iter_rows`), remembering
  each candidate's links and live :class:`LinkState` objects;
* an arrival re-checks *admission* (which is load-dependent) against
  the cached candidates, cheap per-link predicate calls instead of a
  graph search;
* every ``fail_link``/``repair_link`` bumps
  :attr:`NetworkState.generation`, and entries from an older generation
  are discarded on first touch — candidates never outlive the topology
  they were computed on.

Correctness contract (why cached answers equal a from-scratch search):
the admission-filtered BFS returns the ``(hops, lex)``-least path of
the *admissible* subgraph, and the cache enumerates **all** simple
paths of the live topology in exactly that order.  Admissible paths are
a subset of live paths, so the first enumerated candidate that passes
the admission re-check *is* the BFS answer.  When no probed candidate
passes, the cache answers "unknown" and the caller falls back to the
real filtered search — cache misses can cost a little, but can never
change a route.  When the enumeration is exhausted without a hit, there
is *no* admissible path at all and the cache answers that definitively.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

import numpy as np

from repro.network.link_state import EPSILON, LinkState
from repro.network.link_table import LinkTable
from repro.network.state import NetworkState
from repro.routing.ksp import paths_iter_rows
from repro.routing.shortest import bfs_path_rows
from repro.topology.graph import LinkId, Network, link_id

class _NoRouteType:
    """Sentinel type of :data:`NO_ROUTE` (keeps lookups precisely typed)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "NO_ROUTE"


#: Definitive answer: no admissible route exists between the endpoints
#: (the raw enumeration was exhausted without an admission hit).
NO_ROUTE = _NoRouteType()

#: One cached candidate: (node path, link ids, live link states).
Candidate = Tuple[List[int], List[LinkId], List[LinkState]]

#: ``primary_route`` answer: a (path, links) hit, the definitive
#: :data:`NO_ROUTE` sentinel, or ``None`` ("unknown, fall back").
RouteAnswer = Optional[Tuple[List[int], List[LinkId]] | _NoRouteType]

#: Admission predicate over a live link state (load-dependent part).
AdmitFn = Callable[[LinkState], bool]


class _PairEntry:
    """Candidate routes of one (source, destination) pair."""

    __slots__ = ("generation", "candidates", "producer", "exhausted", "backups")

    def __init__(self, generation: int, producer: Iterator[List[int]]) -> None:
        self.generation = generation
        self.producer = producer
        self.candidates: List[Candidate] = []
        self.exhausted = False
        #: primary path (tuple) -> raw disjoint candidate or None when
        #: the live topology has no fully disjoint path for it.
        self.backups: Dict[Tuple[int, ...], Optional[Candidate]] = {}


class RouteCache:
    """Candidate-route cache over one topology + live network state.

    Args:
        topology: The (structurally immutable) network.
        state: Live reservation/failure state; its ``generation``
            counter drives invalidation.
        probe_limit: How many raw candidates an arrival may check before
            the caller must fall back to a full filtered search.  Keeps
            rejection-heavy pairs from paying Yen's enumeration costs on
            every arrival.
        max_pairs: Safety valve on cache size; the cache is cleared
            wholesale when exceeded (deterministic, and in practice
            never hit on paper-scale topologies).
    """

    def __init__(
        self,
        topology: Network,
        state: NetworkState,
        probe_limit: int = 4,
        max_pairs: int = 65536,
    ) -> None:
        if probe_limit < 1:
            raise ValueError(f"probe_limit must be at least 1, got {probe_limit}")
        self.topology = topology
        self.state = state
        self.probe_limit = probe_limit
        self.max_pairs = max_pairs
        self._pairs: Dict[Tuple[int, int], _PairEntry] = {}
        #: Diagnostics: arrivals answered from cache vs. fallbacks.
        self.hits = 0
        self.fallbacks = 0

    # ------------------------------------------------------------------
    # entries
    # ------------------------------------------------------------------
    def _entry(self, source: int, destination: int) -> _PairEntry:
        generation = self.state.generation
        key = (source, destination)
        entry = self._pairs.get(key)
        if entry is None or entry.generation != generation:
            if entry is None and len(self._pairs) >= self.max_pairs:
                self._pairs.clear()
            rows = self.state.adjacency_rows()
            edge_ok = None
            if self.state.failed_links:
                edge_ok = lambda lid, ls: not ls.failed  # noqa: E731
            entry = _PairEntry(
                generation, paths_iter_rows(rows, source, destination, edge_ok)
            )
            self._pairs[key] = entry
        return entry

    def _candidate(self, entry: _PairEntry, index: int) -> Optional[Candidate]:
        """The ``index``-th raw candidate, materializing lazily."""
        while len(entry.candidates) <= index and not entry.exhausted:
            path = next(entry.producer, None)
            if path is None:
                entry.exhausted = True
                break
            links = [link_id(a, b) for a, b in zip(path, path[1:])]
            states = [self.state.link(lid) for lid in links]
            entry.candidates.append((path, links, states))
        if index < len(entry.candidates):
            return entry.candidates[index]
        return None

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def primary_route(
        self, source: int, destination: int, admit: AdmitFn
    ) -> RouteAnswer:
        """First raw candidate passing ``admit`` on every link.

        Returns ``(path, links)`` copies on a hit, :data:`NO_ROUTE` when
        the exhausted enumeration proves no admissible route exists, or
        ``None`` when the first ``probe_limit`` candidates all failed
        admission (caller must fall back to a filtered search).
        """
        entry = self._entry(source, destination)
        for index in range(self.probe_limit):
            cand = self._candidate(entry, index)
            if cand is None:
                return NO_ROUTE
            path, links, states = cand
            admissible = True
            for ls in states:
                if not admit(ls):
                    admissible = False
                    break
            if admissible:
                self.hits += 1
                return list(path), list(links)
        self.fallbacks += 1
        return None

    def raw_disjoint_backup(
        self,
        source: int,
        destination: int,
        primary_path: Tuple[int, ...],
        avoid: FrozenSet[LinkId],
    ) -> Optional[Candidate]:
        """Raw-topology fully-disjoint candidate for ``primary_path``.

        The shortest live-topology path avoiding ``avoid`` entirely,
        ignoring load; memoized per primary path.  ``None`` means no
        fully disjoint live path exists at all — in that case an
        admission-filtered disjoint search cannot succeed either, and
        the caller may go straight to the maximally-disjoint fallback.
        The returned candidate is shared; callers must copy before
        mutating.
        """
        entry = self._entry(source, destination)
        try:
            return entry.backups[primary_path]
        except KeyError:
            pass
        if len(entry.backups) >= 64:  # unbounded-primary-key guard
            entry.backups.clear()
        rows = self.state.adjacency_rows()
        if self.state.failed_links:
            edge_ok = lambda lid, ls: lid not in avoid and not ls.failed  # noqa: E731
        else:
            edge_ok = lambda lid, ls: lid not in avoid  # noqa: E731
        path = bfs_path_rows(rows, source, destination, edge_ok)
        candidate: Optional[Candidate] = None
        if path is not None:
            links = [link_id(a, b) for a, b in zip(path, path[1:])]
            states = [self.state.link(lid) for lid in links]
            candidate = (path, links, states)
        entry.backups[primary_path] = candidate
        return candidate

    # ------------------------------------------------------------------
    # maintenance / diagnostics
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every entry (tests / explicit invalidation)."""
        self._pairs.clear()

    def __len__(self) -> int:
        return len(self._pairs)


# ----------------------------------------------------------------------
# array-core variant: handle-based admission re-check
# ----------------------------------------------------------------------

#: Adjacency rows over dense link indices: node -> [(nbr, lid, index)].
ArrayAdjacencyRows = Dict[int, List[Tuple[int, LinkId, int]]]


class RoutePlan:
    """Precompiled, admission-ready artifacts of one cached route.

    Everything ``request_connection`` used to derive per arrival —
    the int64 dense link-index array, the int64 node array (the shape
    ``ConnectionTable.allocate`` wants), the ``frozenset`` of link ids
    (conflict-set key), and the dense-index set seeding the affected-
    link frontier — is computed once when the candidate is materialized
    and reused until the owning entry's generation is invalidated.
    Plans are shared: callers must treat every field as immutable
    (``ConnectionTable`` arenas copy on append, so handing the arrays
    straight to ``allocate``/``set_backup`` is safe).
    """

    __slots__ = ("path", "links", "idx", "idx_list", "nodes", "link_set", "idx_set")

    def __init__(self, path: List[int], links: List[LinkId], idx: np.ndarray) -> None:
        self.path = path
        self.links = links
        self.idx = idx
        self.idx_list: List[int] = idx.tolist()
        self.nodes = np.asarray(path, dtype=np.int64)
        self.link_set: FrozenSet[LinkId] = frozenset(links)
        self.idx_set: FrozenSet[int] = frozenset(self.idx_list)


class BackupPlan:
    """Precompiled fully-disjoint backup candidate.

    Built only by :meth:`ArrayRouteCache.raw_disjoint_backup`, whose
    BFS avoids every primary link — so a ``BackupPlan``'s overlap with
    its primary is **zero by construction** and callers skip the
    per-arrival overlap count entirely.
    """

    __slots__ = ("path", "links", "idx", "nodes")

    def __init__(self, path: List[int], links: List[LinkId], idx: np.ndarray) -> None:
        self.path = path
        self.links = links
        self.idx = idx
        self.nodes = np.asarray(path, dtype=np.int64)


class _ArrayPairEntry:
    """Candidate routes of one (source, destination) pair (array core)."""

    __slots__ = ("generation", "candidates", "producer", "exhausted", "backups")

    def __init__(self, generation: int, producer: Iterator[List[int]]) -> None:
        self.generation = generation
        self.producer = producer
        self.candidates: List[RoutePlan] = []
        self.exhausted = False
        self.backups: Dict[Tuple[int, ...], Optional[BackupPlan]] = {}


class ArrayRouteCache:
    """Candidate-route cache over a :class:`LinkTable` (SoA core).

    Same enumeration, invalidation, and correctness contract as
    :class:`RouteCache`, but candidates are precompiled
    :class:`RoutePlan` objects carrying dense link-index arrays and the
    derived sets an admission needs.  The admission re-check reads the
    table's materialized ``headroom`` column directly per candidate
    link — a handful of scalar reads on the hit path, no per-arrival
    mask construction.  Callers pass their ``generation`` counter
    (bumped on every fail/repair) so stale entries self-invalidate.
    """

    def __init__(
        self,
        topology: Network,
        links: LinkTable,
        rows: ArrayAdjacencyRows,
        probe_limit: int = 4,
        max_pairs: int = 65536,
    ) -> None:
        if probe_limit < 1:
            raise ValueError(f"probe_limit must be at least 1, got {probe_limit}")
        self.topology = topology
        self.links = links
        self.rows = rows
        self.probe_limit = probe_limit
        self.max_pairs = max_pairs
        self._pairs: Dict[Tuple[int, int], _ArrayPairEntry] = {}
        self.hits = 0
        self.fallbacks = 0

    def _entry(self, source: int, destination: int, generation: int) -> _ArrayPairEntry:
        key = (source, destination)
        entry = self._pairs.get(key)
        if entry is None or entry.generation != generation:
            if entry is None and len(self._pairs) >= self.max_pairs:
                self._pairs.clear()
            failed = self.links.failed
            edge_ok: Optional[Callable[[LinkId, int], bool]] = None
            if failed.any():
                edge_ok = lambda lid, li: not failed[li]  # noqa: E731
            entry = _ArrayPairEntry(
                generation, paths_iter_rows(self.rows, source, destination, edge_ok)
            )
            self._pairs[key] = entry
        return entry

    def _candidate(self, entry: _ArrayPairEntry, index: int) -> Optional[RoutePlan]:
        while len(entry.candidates) <= index and not entry.exhausted:
            path = next(entry.producer, None)
            if path is None:
                entry.exhausted = True
                break
            links = [link_id(a, b) for a, b in zip(path, path[1:])]
            entry.candidates.append(RoutePlan(path, links, self.links.indices_of(links)))
        if index < len(entry.candidates):
            return entry.candidates[index]
        return None

    def primary_plan(
        self, source: int, destination: int, b_min: float, generation: int
    ) -> Optional[RoutePlan | _NoRouteType]:
        """First precompiled candidate admitting a primary of ``b_min``.

        Same answer contract as :meth:`RouteCache.primary_route`: a
        shared :class:`RoutePlan` hit (treat as immutable),
        :data:`NO_ROUTE` when the exhausted enumeration proves no
        admissible route exists, or ``None`` when all probed candidates
        failed (caller falls back to a search).

        The per-link test is the scalar transcription of
        ``LinkTable.primary_admission_mask`` — alive and
        ``b_min <= headroom + EPSILON`` — probed lazily so a cache hit
        (the overwhelmingly common case) never pays for building the
        full per-link mask.
        """
        entry = self._entry(source, destination, generation)
        t = self.links
        t.refresh_aggregates()
        failed = t.failed
        headroom = t.headroom
        for index in range(self.probe_limit):
            plan = self._candidate(entry, index)
            if plan is None:
                return NO_ROUTE
            for li in plan.idx_list:
                if failed[li] or b_min > headroom[li] + EPSILON:
                    break
            else:
                self.hits += 1
                return plan
        self.fallbacks += 1
        return None

    def primary_route(
        self, source: int, destination: int, b_min: float, generation: int
    ) -> Optional[Tuple[List[int], List[LinkId]] | _NoRouteType]:
        """Copying variant of :meth:`primary_plan` (compat surface)."""
        found = self.primary_plan(source, destination, b_min, generation)
        if found is None or isinstance(found, _NoRouteType):
            return found
        return list(found.path), list(found.links)

    def raw_disjoint_backup(
        self,
        source: int,
        destination: int,
        primary_path: Tuple[int, ...],
        avoid: FrozenSet[LinkId],
        generation: int,
    ) -> Optional[BackupPlan]:
        """Raw-topology fully-disjoint backup plan (see :class:`RouteCache`).

        ``None`` means no fully disjoint live path exists at all.  The
        returned plan is shared; treat it as immutable.
        """
        entry = self._entry(source, destination, generation)
        try:
            return entry.backups[primary_path]
        except KeyError:
            pass
        if len(entry.backups) >= 64:  # unbounded-primary-key guard
            entry.backups.clear()
        failed = self.links.failed
        if failed.any():
            edge_ok = lambda lid, li: lid not in avoid and not failed[li]  # noqa: E731
        else:
            edge_ok = lambda lid, li: lid not in avoid  # noqa: E731
        path = bfs_path_rows(self.rows, source, destination, edge_ok)
        candidate: Optional[BackupPlan] = None
        if path is not None:
            links = [link_id(a, b) for a, b in zip(path, path[1:])]
            candidate = BackupPlan(path, links, self.links.indices_of(links))
        entry.backups[primary_path] = candidate
        return candidate

    def clear(self) -> None:
        """Drop every entry (tests / explicit invalidation)."""
        self._pairs.clear()

    def __len__(self) -> int:
        return len(self._pairs)
