"""Route selection: shortest-path, k-shortest, disjoint backup, flooding."""

from repro.routing.disjoint import disjoint_path, paths_link_disjoint, shared_links
from repro.routing.flooding import (
    AllowanceFn,
    FloodingResult,
    FloodRoute,
    bounded_flood,
    flooding_route_pair,
)
from repro.routing.ksp import k_shortest_paths, sequential_route_search
from repro.routing.shortest import (
    LinkFilter,
    LinkWeight,
    path_cost,
    path_hops,
    shortest_path,
)

__all__ = [
    "disjoint_path",
    "paths_link_disjoint",
    "shared_links",
    "AllowanceFn",
    "FloodingResult",
    "FloodRoute",
    "bounded_flood",
    "flooding_route_pair",
    "k_shortest_paths",
    "sequential_route_search",
    "LinkFilter",
    "LinkWeight",
    "path_cost",
    "path_hops",
    "shortest_path",
]
