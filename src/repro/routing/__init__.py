"""Route selection: shortest-path, k-shortest, disjoint backup, flooding.

All searches run over compact adjacency rows (see
:meth:`repro.topology.graph.Network.adjacency_rows`); the
generation-invalidated candidate cache used by the network manager
lives in :mod:`repro.routing.cache`.
"""

from __future__ import annotations

from repro.routing.cache import NO_ROUTE, RouteAnswer, RouteCache
from repro.routing.disjoint import (
    disjoint_path,
    maximally_disjoint_path,
    paths_link_disjoint,
    shared_links,
)
from repro.routing.flooding import (
    AllowanceFn,
    FloodingResult,
    FloodRoute,
    bounded_flood,
    flooding_route_pair,
)
from repro.routing.ksp import (
    k_shortest_paths,
    sequential_route_search,
    shortest_paths_iter,
)
from repro.routing.shortest import (
    LinkFilter,
    LinkWeight,
    bfs_path_rows,
    dijkstra_path_rows,
    path_cost,
    path_hops,
    shortest_path,
)

__all__ = [
    "NO_ROUTE",
    "RouteAnswer",
    "RouteCache",
    "bfs_path_rows",
    "dijkstra_path_rows",
    "maximally_disjoint_path",
    "shortest_paths_iter",
    "disjoint_path",
    "paths_link_disjoint",
    "shared_links",
    "AllowanceFn",
    "FloodingResult",
    "FloodRoute",
    "bounded_flood",
    "flooding_route_pair",
    "k_shortest_paths",
    "sequential_route_search",
    "LinkFilter",
    "LinkWeight",
    "path_cost",
    "path_hops",
    "shortest_path",
]
