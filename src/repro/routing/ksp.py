"""Yen's k-shortest loopless paths.

Used by the sequential route-search strategy ("all possible routes are
checked one by one until a qualified one is found", paper §2.1.1), by
tests that need route diversity, and by the routing ablation benchmark.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.errors import RoutingError
from repro.routing.shortest import LinkFilter, path_cost, shortest_path
from repro.topology.graph import Link, LinkId, Network


def k_shortest_paths(
    net: Network,
    source: int,
    destination: int,
    k: int,
    link_filter: Optional[LinkFilter] = None,
) -> List[List[int]]:
    """Up to ``k`` loopless shortest paths (hop metric), shortest first.

    Classic Yen's algorithm over the admissible subgraph; deterministic
    given a deterministic underlying shortest-path (ours breaks ties by
    node number).
    """
    if k < 1:
        raise RoutingError(f"k must be at least 1, got {k}")
    first = shortest_path(net, source, destination, link_filter)
    if first is None:
        return []
    paths: List[List[int]] = [first]
    candidates: List[Tuple[float, List[int]]] = []
    seen: Set[Tuple[int, ...]] = {tuple(first)}

    while len(paths) < k:
        prev = paths[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            removed_links: Set[LinkId] = set()
            for path in paths:
                if len(path) > i and path[: i + 1] == root:
                    removed_links.add(net.get_link(path[i], path[i + 1]).id)
            banned_nodes = set(root[:-1])

            def spur_filter(link: Link) -> bool:
                if link.id in removed_links:
                    return False
                if link.u in banned_nodes or link.v in banned_nodes:
                    return False
                return link_filter is None or link_filter(link)

            spur = shortest_path(net, spur_node, destination, spur_filter)
            if spur is None:
                continue
            total = root[:-1] + spur
            key = tuple(total)
            if key in seen:
                continue
            seen.add(key)
            candidates.append((path_cost(net, total), total))
        if not candidates:
            break
        candidates.sort(key=lambda item: (item[0], item[1]))
        _, best = candidates.pop(0)
        paths.append(best)
    return paths


def sequential_route_search(
    net: Network,
    source: int,
    destination: int,
    admissible: LinkFilter,
    max_candidates: int = 10,
) -> Optional[List[int]]:
    """The paper's *sequential* search strategy.

    Enumerates shortest routes of the raw topology one by one (ignoring
    load) and returns the first whose every link passes ``admissible`` —
    mirroring "shortest routes are picked and checked first,
    sequentially one by one".  Returns ``None`` when ``max_candidates``
    routes were tried without success.
    """
    for path in k_shortest_paths(net, source, destination, max_candidates):
        links = [net.get_link(a, b) for a, b in zip(path, path[1:])]
        if all(admissible(link) for link in links):
            return path
    return None
