"""Yen's k-shortest loopless paths, as a lazy generator.

Used by the sequential route-search strategy ("all possible routes are
checked one by one until a qualified one is found", paper §2.1.1), by
the manager's candidate-route cache, by tests that need route
diversity, and by the routing ablation benchmark.

:func:`shortest_paths_iter` enumerates *all* loopless paths between two
nodes in ``(hops, node-sequence)`` lexicographic order, computing each
next path only when the consumer asks for it: the first path costs one
BFS, and the spur searches of Yen's algorithm run only when a second
path is actually pulled.  Candidate deviations are kept in a heap
(``(cost, path)`` tuples), so accepting a path is ``O(log n)`` instead
of re-sorting the whole candidate list as the previous eager
implementation did.  The enumeration order is bitwise identical to that
implementation: the heap pops candidates in exactly the
``sort(key=(cost, path))`` order, and the spur searches use the same
neighbor-sorted BFS tie-breaking.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import Iterator, List, Optional, Set, Tuple

from repro.errors import RoutingError
from repro.routing.shortest import (
    AdjacencyRows,
    EdgeFilter,
    LinkFilter,
    _check_endpoints,
    bfs_path_rows,
)
from repro.topology.graph import LinkId, Network, link_id


def shortest_paths_iter(
    net: Network,
    source: int,
    destination: int,
    link_filter: Optional[LinkFilter] = None,
) -> Iterator[List[int]]:
    """Lazily enumerate loopless shortest paths (hop metric), best first.

    Classic Yen's algorithm over the admissible subgraph; deterministic
    given the deterministic underlying shortest-path (ours breaks ties
    by node number).  Endpoint validation happens eagerly; path
    computation happens on demand.
    """
    _check_endpoints(net, source, destination)
    rows = net.adjacency_rows()
    edge_ok: Optional[EdgeFilter] = None
    if link_filter is not None:
        edge_ok = lambda lid, link: link_filter(link)  # noqa: E731
    return paths_iter_rows(rows, source, destination, edge_ok)


def paths_iter_rows(
    rows: AdjacencyRows,
    source: int,
    destination: int,
    edge_ok: Optional[EdgeFilter] = None,
) -> Iterator[List[int]]:
    """Rows-based core of :func:`shortest_paths_iter`.

    Takes compact adjacency rows directly so callers holding live-state
    rows (the route cache) can enumerate without per-edge dict lookups.
    """
    first = bfs_path_rows(rows, source, destination, edge_ok)
    if first is None:
        return
    yield first
    paths: List[List[int]] = [first]
    #: Deviation candidates as (cost, path); heap order == (cost, lex).
    candidates: List[Tuple[float, List[int]]] = []
    seen: Set[Tuple[int, ...]] = {tuple(first)}

    while True:
        prev = paths[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            removed_links: Set[LinkId] = set()
            for path in paths:
                if len(path) > i and path[: i + 1] == root:
                    removed_links.add(link_id(path[i], path[i + 1]))
            banned_nodes = set(root[:-1])

            def spur_ok(
                lid: LinkId,
                payload: object,
                _removed: Set[LinkId] = removed_links,
                _banned: Set[int] = banned_nodes,
                _base: Optional[EdgeFilter] = edge_ok,
            ) -> bool:
                if lid in _removed:
                    return False
                if lid[0] in _banned or lid[1] in _banned:
                    return False
                return _base is None or _base(lid, payload)

            spur = bfs_path_rows(rows, spur_node, destination, spur_ok)
            if spur is None:
                continue
            total = root[:-1] + spur
            key = tuple(total)
            if key in seen:
                continue
            seen.add(key)
            heapq.heappush(candidates, (float(len(total) - 1), total))
        if not candidates:
            return
        _, best = heapq.heappop(candidates)
        paths.append(best)
        yield best


def k_shortest_paths(
    net: Network,
    source: int,
    destination: int,
    k: int,
    link_filter: Optional[LinkFilter] = None,
) -> List[List[int]]:
    """Up to ``k`` loopless shortest paths (hop metric), shortest first."""
    if k < 1:
        raise RoutingError(f"k must be at least 1, got {k}")
    return list(islice(shortest_paths_iter(net, source, destination, link_filter), k))


def sequential_route_search(
    net: Network,
    source: int,
    destination: int,
    admissible: LinkFilter,
    max_candidates: int = 10,
) -> Optional[List[int]]:
    """The paper's *sequential* search strategy.

    Enumerates shortest routes of the raw topology one by one (ignoring
    load) and returns the first whose every link passes ``admissible`` —
    mirroring "shortest routes are picked and checked first,
    sequentially one by one".  Returns ``None`` when ``max_candidates``
    routes were tried without success.

    Thanks to the lazy enumeration, an arrival whose very first
    shortest route is admissible pays exactly one BFS; Yen's spur
    searches only run for arrivals whose early candidates are rejected.
    """
    if max_candidates < 1:
        raise RoutingError(f"max_candidates must be at least 1, got {max_candidates}")
    paths = shortest_paths_iter(net, source, destination)
    for path in islice(paths, max_candidates):
        links = [net.get_link(a, b) for a, b in zip(path, path[1:])]
        if all(admissible(link) for link in links):
            return path
    return None
