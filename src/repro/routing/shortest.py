"""Admission-aware shortest-path route selection.

The paper's network manager "selects a route between the source and
destination of the channel along which sufficient resources can be
reserved" and notes that the request that arrives first at the
destination "is likely to have traversed the shortest path".  This
module provides the centralized equivalent: hop-count (or
length-weighted) Dijkstra restricted to links that pass a caller-
supplied admission predicate.  The distributed equivalent (bounded
flooding) lives in :mod:`repro.routing.flooding` and finds the same
routes at higher message cost.

Hot-path layout: every search here runs over *compact adjacency rows*
(``node -> [(neighbor, link_id, payload), ...]``, sorted by neighbor —
see :meth:`Network.adjacency_rows`), iterating prebuilt arrays instead
of calling ``neighbors()`` (which sorts) plus ``get_link()`` (a dict
lookup) per edge.  The rows-based cores :func:`bfs_path_rows` and
:func:`dijkstra_path_rows` are shared by the k-shortest enumeration,
the disjoint backup search, and the manager's admission-aware searches
(which use rows whose payload is the live ``LinkState``).

Determinism contract (relied on by the route cache): with the hop
metric, :func:`bfs_path_rows` returns the unique path that minimizes
``(hops, node-sequence)`` lexicographically among all admissible paths.
BFS over neighbor-sorted rows discovers each layer in lexicographic
order of tree paths, so each node's parent is the one reached by the
lexicographically smallest shortest prefix — identical inputs always
yield the identical route (reproducibility), and the (hops, lex)-least
admissible path is exactly what a full candidate enumeration would
accept first.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import RoutingError
from repro.topology.graph import Link, LinkId, Network

#: Predicate deciding whether a link may carry the new channel.
LinkFilter = Callable[[Link], bool]

#: Per-link cost function for weighted routing.
LinkWeight = Callable[[Link], float]

#: Rows-based edge predicate: ``(link_id, payload) -> usable?`` where the
#: payload is whatever the rows carry (a ``Link`` for topology rows, a
#: ``LinkState`` for live-state rows).
EdgeFilter = Callable[[LinkId, object], bool]

#: Rows-based edge cost: ``(link_id, payload) -> weight``.
EdgeWeight = Callable[[LinkId, object], float]

#: Compact adjacency mapping (payload type intentionally loose).
AdjacencyRows = Mapping[int, Sequence[Tuple[int, LinkId, object]]]


def _check_endpoints(net: Network, source: int, destination: int) -> None:
    if not net.has_node(source):
        raise RoutingError(f"unknown source node {source}")
    if not net.has_node(destination):
        raise RoutingError(f"unknown destination node {destination}")
    if source == destination:
        raise RoutingError(f"source and destination coincide ({source})")


def shortest_path(
    net: Network,
    source: int,
    destination: int,
    link_filter: Optional[LinkFilter] = None,
    weight: Optional[LinkWeight] = None,
) -> Optional[List[int]]:
    """Shortest admissible path as a node list, or ``None`` if cut off.

    Args:
        net: Topology to route over.
        source: Origin node.
        destination: Target node.
        link_filter: Links failing this predicate are invisible
            (defaults to all links usable).
        weight: Per-link cost; ``None`` means hop count, which uses a
            plain BFS fast path.

    Ties are broken deterministically toward lower node numbers so that
    identical inputs always yield identical routes (reproducibility).
    """
    _check_endpoints(net, source, destination)
    rows = net.adjacency_rows()
    if weight is None:
        if link_filter is None:
            return bfs_path_rows(rows, source, destination)
        return bfs_path_rows(
            rows, source, destination, lambda lid, link: link_filter(link)
        )
    edge_weight = lambda lid, link: weight(link)  # noqa: E731 - tiny shim
    if link_filter is None:
        return dijkstra_path_rows(rows, source, destination, None, edge_weight)
    return dijkstra_path_rows(
        rows, source, destination, lambda lid, link: link_filter(link), edge_weight
    )


def bfs_path_rows(
    rows: AdjacencyRows,
    source: int,
    destination: int,
    edge_ok: Optional[EdgeFilter] = None,
) -> Optional[List[int]]:
    """Hop-count shortest path over compact adjacency rows.

    The core of every unweighted search in the library.  Returns the
    (hops, node-sequence)-lexicographically least admissible path (see
    the module docstring), or ``None`` when the destination is cut off.
    """
    parent: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        if node == destination:
            break
        for nbr, lid, payload in rows.get(node, ()):
            if nbr in parent:
                continue
            if edge_ok is not None and not edge_ok(lid, payload):
                continue
            parent[nbr] = node
            queue.append(nbr)
    if destination not in parent:
        return None
    return _walk_back(parent, source, destination)


def dijkstra_path_rows(
    rows: AdjacencyRows,
    source: int,
    destination: int,
    edge_ok: Optional[EdgeFilter],
    edge_weight: EdgeWeight,
) -> Optional[List[int]]:
    """Weighted shortest path over compact adjacency rows (Dijkstra)."""
    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {source: source}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == destination:
            break
        for nbr, lid, payload in rows.get(node, ()):
            if nbr in settled:
                continue
            if edge_ok is not None and not edge_ok(lid, payload):
                continue
            w = edge_weight(lid, payload)
            if w < 0:
                raise RoutingError(f"negative link weight {w} on {lid}")
            cand = d + w
            if cand < dist.get(nbr, float("inf")) - 1e-15:
                dist[nbr] = cand
                parent[nbr] = node
                heapq.heappush(heap, (cand, nbr))
    if destination not in parent:
        return None
    return _walk_back(parent, source, destination)


def _walk_back(parent: Dict[int, int], source: int, destination: int) -> List[int]:
    path = [destination]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def path_hops(path: Sequence[int]) -> int:
    """Number of links in a node path."""
    if len(path) < 2:
        raise RoutingError(f"path {list(path)} has no links")
    return len(path) - 1


def path_cost(net: Network, path: Sequence[int], weight: Optional[LinkWeight] = None) -> float:
    """Total cost of a node path under ``weight`` (hop count by default)."""
    links = [net.get_link(a, b) for a, b in zip(path, path[1:])]
    if weight is None:
        return float(len(links))
    return sum(weight(link) for link in links)


def reachable_filterless(net: Network, source: int) -> set[int]:
    """All nodes reachable from ``source`` ignoring filters (diagnostics)."""
    rows = net.adjacency_rows()
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nbr, _lid, _link in rows.get(node, ()):
            if nbr not in seen:
                seen.add(nbr)
                queue.append(nbr)
    return seen
