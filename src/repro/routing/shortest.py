"""Admission-aware shortest-path route selection.

The paper's network manager "selects a route between the source and
destination of the channel along which sufficient resources can be
reserved" and notes that the request that arrives first at the
destination "is likely to have traversed the shortest path".  This
module provides the centralized equivalent: hop-count (or
length-weighted) Dijkstra restricted to links that pass a caller-
supplied admission predicate.  The distributed equivalent (bounded
flooding) lives in :mod:`repro.routing.flooding` and finds the same
routes at higher message cost.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import RoutingError
from repro.topology.graph import Link, LinkId, Network

#: Predicate deciding whether a link may carry the new channel.
LinkFilter = Callable[[Link], bool]

#: Per-link cost function for weighted routing.
LinkWeight = Callable[[Link], float]


def _check_endpoints(net: Network, source: int, destination: int) -> None:
    if not net.has_node(source):
        raise RoutingError(f"unknown source node {source}")
    if not net.has_node(destination):
        raise RoutingError(f"unknown destination node {destination}")
    if source == destination:
        raise RoutingError(f"source and destination coincide ({source})")


def shortest_path(
    net: Network,
    source: int,
    destination: int,
    link_filter: Optional[LinkFilter] = None,
    weight: Optional[LinkWeight] = None,
) -> Optional[List[int]]:
    """Shortest admissible path as a node list, or ``None`` if cut off.

    Args:
        net: Topology to route over.
        source: Origin node.
        destination: Target node.
        link_filter: Links failing this predicate are invisible
            (defaults to all links usable).
        weight: Per-link cost; ``None`` means hop count, which uses a
            plain BFS fast path.

    Ties are broken deterministically toward lower node numbers so that
    identical inputs always yield identical routes (reproducibility).
    """
    _check_endpoints(net, source, destination)
    if weight is None:
        return _bfs_path(net, source, destination, link_filter)
    return _dijkstra_path(net, source, destination, link_filter, weight)


def _bfs_path(
    net: Network, source: int, destination: int, link_filter: Optional[LinkFilter]
) -> Optional[List[int]]:
    parent: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        if node == destination:
            break
        for nbr in net.neighbors(node):
            if nbr in parent:
                continue
            link = net.get_link(node, nbr)
            if link_filter is not None and not link_filter(link):
                continue
            parent[nbr] = node
            queue.append(nbr)
    if destination not in parent:
        return None
    return _walk_back(parent, source, destination)


def _dijkstra_path(
    net: Network,
    source: int,
    destination: int,
    link_filter: Optional[LinkFilter],
    weight: LinkWeight,
) -> Optional[List[int]]:
    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {source: source}
    heap: List[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == destination:
            break
        for nbr in net.neighbors(node):
            if nbr in settled:
                continue
            link = net.get_link(node, nbr)
            if link_filter is not None and not link_filter(link):
                continue
            w = weight(link)
            if w < 0:
                raise RoutingError(f"negative link weight {w} on {link.id}")
            cand = d + w
            if cand < dist.get(nbr, float("inf")) - 1e-15:
                dist[nbr] = cand
                parent[nbr] = node
                heapq.heappush(heap, (cand, nbr))
    if destination not in parent:
        return None
    return _walk_back(parent, source, destination)


def _walk_back(parent: Dict[int, int], source: int, destination: int) -> List[int]:
    path = [destination]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def path_hops(path: Sequence[int]) -> int:
    """Number of links in a node path."""
    if len(path) < 2:
        raise RoutingError(f"path {list(path)} has no links")
    return len(path) - 1


def path_cost(net: Network, path: Sequence[int], weight: Optional[LinkWeight] = None) -> float:
    """Total cost of a node path under ``weight`` (hop count by default)."""
    links = [net.get_link(a, b) for a, b in zip(path, path[1:])]
    if weight is None:
        return float(len(links))
    return sum(weight(link) for link in links)


def reachable_filterless(net: Network, source: int) -> set[int]:
    """All nodes reachable from ``source`` ignoring filters (diagnostics)."""
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nbr in net.neighbors(node):
            if nbr not in seen:
                seen.add(nbr)
                queue.append(nbr)
    return seen
