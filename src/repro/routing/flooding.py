"""Bounded-flooding distributed route search (paper §2.1.1 / §3.1).

When a client requests a DR-connection, "the network floods, within a
bounded region around the client, the request to find routes ... Any
node that received this request tries to forward it with its bandwidth
allowance to all of its neighbors except the node which the request came
from.  However, if there is not enough bandwidth to be allocated to the
newly-requested connection, or a request copy received earlier has a
better bandwidth allowance, the new request copy will be discarded.
Those request copies that exceed the specified flooding bound will also
be discarded."

This module is a faithful, deterministic simulation of that protocol.
The first route to reach the destination becomes the primary; among the
copies that arrive later, the first whose route is link-disjoint from
the primary becomes the backup (:func:`flooding_route_pair`).  Message
counts are reported so the routing ablation can compare the flooding
cost against centralized Dijkstra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.topology.graph import Link, Network

#: Available bandwidth a link can offer the new connection (Kb/s).
AllowanceFn = Callable[[Link], float]


@dataclass(frozen=True)
class FloodRoute:
    """One request copy that reached the destination.

    Attributes:
        path: Node path from source to destination.
        allowance: Bottleneck bandwidth along the path.
        hops: Path length in links (equals the arrival "time").
    """

    path: Tuple[int, ...]
    allowance: float
    hops: int


@dataclass
class FloodingResult:
    """Outcome of one bounded flood."""

    routes: List[FloodRoute] = field(default_factory=list)
    messages_sent: int = 0
    nodes_reached: int = 0

    @property
    def found(self) -> bool:
        """Whether at least one route reached the destination."""
        return bool(self.routes)


def bounded_flood(
    net: Network,
    source: int,
    destination: int,
    b_min: float,
    allowance: AllowanceFn,
    hop_bound: int,
    max_routes: int = 16,
) -> FloodingResult:
    """Run one bounded flood and collect destination arrivals in order.

    The flood advances in synchronous hop rounds (one hop per unit of
    network delay); within a round, request copies are processed in
    lexicographic path order, making the whole search deterministic.

    Args:
        net: Topology.
        source: Requesting client's node.
        destination: Target node.
        b_min: Minimum bandwidth the connection needs; copies whose
            bottleneck allowance would fall below it are discarded.
        allowance: Per-link available-bandwidth oracle.
        hop_bound: Flooding bound (copies beyond it are discarded).
        max_routes: Stop after this many routes reach the destination.
    """
    if hop_bound < 1:
        raise RoutingError(f"hop bound must be >= 1, got {hop_bound}")
    if not net.has_node(source) or not net.has_node(destination):
        raise RoutingError(f"unknown endpoint in ({source}, {destination})")
    if source == destination:
        raise RoutingError("source and destination coincide")

    result = FloodingResult()
    rows = net.adjacency_rows()
    #: Best allowance each node has already forwarded; later copies with
    #: no better allowance are discarded (the paper's suppression rule).
    best_seen: Dict[int, float] = {source: float("inf")}
    frontier: List[Tuple[Tuple[int, ...], float]] = [((source,), float("inf"))]

    for _hop in range(hop_bound):
        if not frontier or len(result.routes) >= max_routes:
            break
        frontier.sort(key=lambda item: item[0])
        next_frontier: List[Tuple[Tuple[int, ...], float]] = []
        for path, allow in frontier:
            node = path[-1]
            prev = path[-2] if len(path) > 1 else None
            for nbr, _lid, link in rows.get(node, ()):
                if nbr == prev or nbr in path:
                    continue
                offered = allowance(link)
                new_allow = min(allow, offered)
                if new_allow + 1e-12 < b_min:
                    continue  # not enough bandwidth: discard the copy
                result.messages_sent += 1
                new_path = path + (nbr,)
                if nbr == destination:
                    result.routes.append(
                        FloodRoute(path=new_path, allowance=new_allow, hops=len(new_path) - 1)
                    )
                    if len(result.routes) >= max_routes:
                        break
                    continue
                if new_allow <= best_seen.get(nbr, 0.0) + 1e-12:
                    continue  # an earlier copy at this node was at least as good
                best_seen[nbr] = new_allow
                next_frontier.append((new_path, new_allow))
            if len(result.routes) >= max_routes:
                break
        frontier = next_frontier

    result.nodes_reached = len(best_seen)
    return result


def flooding_route_pair(
    net: Network,
    source: int,
    destination: int,
    b_min: float,
    allowance: AllowanceFn,
    backup_allowance: Optional[AllowanceFn] = None,
    hop_bound: int = 12,
    max_routes: int = 16,
) -> Tuple[Optional[List[int]], Optional[List[int]]]:
    """Primary/backup route pair via one bounded flood.

    The destination confirms the first arriving route as the primary and
    the first later route that is link-disjoint from it (and admissible
    for a backup, per ``backup_allowance``) as the backup — exactly the
    confirmation protocol of §3.1.

    Returns ``(primary, backup)``; either may be ``None``.
    """
    flood = bounded_flood(net, source, destination, b_min, allowance, hop_bound, max_routes)
    if not flood.found:
        return None, None
    primary = list(flood.routes[0].path)
    primary_links = set(net.path_links(primary))
    for route in flood.routes[1:]:
        candidate = list(route.path)
        links = net.path_links(candidate)
        if any(lid in primary_links for lid in links):
            continue
        if backup_allowance is not None:
            ok = all(
                backup_allowance(net.get_link(a, b)) + 1e-12 >= b_min
                for a, b in zip(candidate, candidate[1:])
            )
            if not ok:
                continue
        return primary, candidate
    return primary, None
