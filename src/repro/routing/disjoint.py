"""Backup-route selection: link-disjoint, with maximally-disjoint fallback.

The dependability QoS of a DR-connection demands a backup channel "which
may be totally link-disjoint or maximally link-disjoint from its
corresponding primary channel, if there does not exist any link-disjoint
backup path" (paper §1, footnote 1).  :func:`disjoint_path` implements
exactly that contract:

1. try a shortest admissible path that avoids every primary link;
2. if none exists and ``allow_partial`` is set, find the admissible
   path that overlaps the primary in as few links as possible (among
   those, the shortest), by Dijkstra with a large additive penalty per
   shared link.

Stage 2 is exposed separately as :func:`maximally_disjoint_path` so the
route cache can skip the stage-1 search when it already knows (from a
cached raw-topology search) that no fully disjoint path exists.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.routing.shortest import (
    LinkFilter,
    _check_endpoints,
    bfs_path_rows,
    dijkstra_path_rows,
)
from repro.topology.graph import LinkId, Network, link_id

#: Penalty that dominates any hop-count difference: a path overlapping
#: the primary in one link is always worse than any overlap-free path.
_SHARED_LINK_PENALTY: float = 1e6


def disjoint_path(
    net: Network,
    source: int,
    destination: int,
    avoid: FrozenSet[LinkId],
    link_filter: Optional[LinkFilter] = None,
    allow_partial: bool = True,
) -> Optional[Tuple[List[int], int]]:
    """Find a backup path avoiding ``avoid`` (the primary's links).

    Returns ``(path, overlap)`` where ``overlap`` counts the links the
    path shares with ``avoid`` (0 when fully disjoint), or ``None`` when
    no admissible path exists at all.

    Args:
        net: Topology.
        source: Origin node.
        destination: Target node.
        avoid: Link ids of the primary channel.
        link_filter: Admission predicate applied on top of disjointness
            (e.g. backup multiplexing headroom, link liveness).
        allow_partial: Permit a maximally-disjoint path when no fully
            disjoint one exists.
    """
    _check_endpoints(net, source, destination)
    rows = net.adjacency_rows()
    if link_filter is None:
        disjoint_ok = lambda lid, link: lid not in avoid  # noqa: E731
    else:
        disjoint_ok = (  # noqa: E731
            lambda lid, link: lid not in avoid and link_filter(link)
        )
    path = bfs_path_rows(rows, source, destination, disjoint_ok)
    if path is not None:
        return path, 0
    if not allow_partial:
        return None
    return maximally_disjoint_path(net, source, destination, avoid, link_filter)


def maximally_disjoint_path(
    net: Network,
    source: int,
    destination: int,
    avoid: FrozenSet[LinkId],
    link_filter: Optional[LinkFilter] = None,
) -> Optional[Tuple[List[int], int]]:
    """Admissible path overlapping ``avoid`` in as few links as possible.

    The second stage of :func:`disjoint_path`: Dijkstra where every
    shared link costs a penalty dominating any hop-count difference, so
    overlap count is minimized first and path length second.  Returns
    ``(path, overlap)`` or ``None`` when no admissible path exists.
    """
    _check_endpoints(net, source, destination)
    rows = net.adjacency_rows()

    def penalised_weight(lid: LinkId, link: object) -> float:
        return _SHARED_LINK_PENALTY + 1.0 if lid in avoid else 1.0

    edge_ok = None
    if link_filter is not None:
        edge_ok = lambda lid, link: link_filter(link)  # noqa: E731
    path = dijkstra_path_rows(rows, source, destination, edge_ok, penalised_weight)
    if path is None:
        return None
    overlap = sum(1 for a, b in zip(path, path[1:]) if link_id(a, b) in avoid)
    return path, overlap


def paths_link_disjoint(net: Network, path_a: Sequence[int], path_b: Sequence[int]) -> bool:
    """Whether two node paths share no link."""
    links_a = set(net.path_links(path_a))
    links_b = set(net.path_links(path_b))
    return not (links_a & links_b)


def shared_links(net: Network, path_a: Sequence[int], path_b: Sequence[int]) -> List[LinkId]:
    """The links two node paths have in common, sorted."""
    links_a = set(net.path_links(path_a))
    links_b = set(net.path_links(path_b))
    return sorted(links_a & links_b)
