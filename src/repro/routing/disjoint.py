"""Backup-route selection: link-disjoint, with maximally-disjoint fallback.

The dependability QoS of a DR-connection demands a backup channel "which
may be totally link-disjoint or maximally link-disjoint from its
corresponding primary channel, if there does not exist any link-disjoint
backup path" (paper §1, footnote 1).  :func:`disjoint_path` implements
exactly that contract:

1. try a shortest admissible path that avoids every primary link;
2. if none exists and ``allow_partial`` is set, find the admissible
   path that overlaps the primary in as few links as possible (among
   those, the shortest), by Dijkstra with a large additive penalty per
   shared link.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.routing.shortest import LinkFilter, shortest_path
from repro.topology.graph import Link, LinkId, Network

#: Penalty that dominates any hop-count difference: a path overlapping
#: the primary in one link is always worse than any overlap-free path.
_SHARED_LINK_PENALTY: float = 1e6


def disjoint_path(
    net: Network,
    source: int,
    destination: int,
    avoid: FrozenSet[LinkId],
    link_filter: Optional[LinkFilter] = None,
    allow_partial: bool = True,
) -> Optional[Tuple[List[int], int]]:
    """Find a backup path avoiding ``avoid`` (the primary's links).

    Returns ``(path, overlap)`` where ``overlap`` counts the links the
    path shares with ``avoid`` (0 when fully disjoint), or ``None`` when
    no admissible path exists at all.

    Args:
        net: Topology.
        source: Origin node.
        destination: Target node.
        avoid: Link ids of the primary channel.
        link_filter: Admission predicate applied on top of disjointness
            (e.g. backup multiplexing headroom, link liveness).
        allow_partial: Permit a maximally-disjoint path when no fully
            disjoint one exists.
    """

    def disjoint_filter(link: Link) -> bool:
        if link.id in avoid:
            return False
        return link_filter is None or link_filter(link)

    path = shortest_path(net, source, destination, disjoint_filter)
    if path is not None:
        return path, 0
    if not allow_partial:
        return None

    def penalised_weight(link: Link) -> float:
        return _SHARED_LINK_PENALTY + 1.0 if link.id in avoid else 1.0

    path = shortest_path(net, source, destination, link_filter, weight=penalised_weight)
    if path is None:
        return None
    overlap = sum(1 for a, b in zip(path, path[1:]) if net.get_link(a, b).id in avoid)
    return path, overlap


def paths_link_disjoint(net: Network, path_a: Sequence[int], path_b: Sequence[int]) -> bool:
    """Whether two node paths share no link."""
    links_a = set(net.path_links(path_a))
    links_b = set(net.path_links(path_b))
    return not (links_a & links_b)


def shared_links(net: Network, path_a: Sequence[int], path_b: Sequence[int]) -> List[LinkId]:
    """The links two node paths have in common, sorted."""
    links_a = set(net.path_links(path_a))
    links_b = set(net.path_links(path_b))
    return sorted(links_a & links_b)
