"""Single-link packet simulation: reservations → delivered service.

Closes the loop between the two phases of a real-time channel: the
establishment layer reserves per-channel bandwidth; this simulator shows
that the run-time scheduler actually *delivers* those rates (and, via
interval-QoS regulators, that overload is shed without breaking any
k-out-of-M floor).

Usage sketch::

    sim = LinkSimulation(capacity=10_000.0)
    sim.add_channel(1, reserved_rate=500.0, source=CbrSource(1, 500.0))
    sim.add_channel(2, reserved_rate=100.0, source=CbrSource(2, 400.0))  # greedy
    report = sim.run(horizon=10.0)
    report.stats[1].throughput(10.0)   # ~500 Kb/s
    report.stats[2].throughput(10.0)   # bounded near its fair share
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.errors import SimulationError
from repro.qos.interval import IntervalRegulator
from repro.runtime.packets import ChannelDeliveryStats, Packet
from repro.runtime.scheduler import FairLinkScheduler
from repro.runtime.sources import merge_streams


class PacketSource(Protocol):
    """Anything that can enumerate its packets up to a horizon."""

    channel_id: int

    def packets_until(self, horizon: float) -> List[Packet]:  # pragma: no cover
        ...


@dataclass
class _ChannelSetup:
    reserved_rate: float
    source: PacketSource
    regulator: Optional[IntervalRegulator] = None


@dataclass
class LinkSimulationReport:
    """Outcome of one link-level packet simulation."""

    horizon: float
    stats: Dict[int, ChannelDeliveryStats] = field(default_factory=dict)
    #: Packets still queued when the horizon closed (per channel).
    undelivered: Dict[int, int] = field(default_factory=dict)

    def throughput(self, channel_id: int) -> float:
        """Delivered rate of one channel over the horizon (Kb/s)."""
        return self.stats[channel_id].throughput(self.horizon)

    def total_delivered_bits(self) -> float:
        """Bits delivered across all channels."""
        return sum(s.delivered_bits for s in self.stats.values())


class LinkSimulation:
    """Packet-level simulation of one link and its registered channels."""

    def __init__(self, capacity: float) -> None:
        self.capacity = capacity
        self._setups: Dict[int, _ChannelSetup] = {}

    def add_channel(
        self,
        channel_id: int,
        reserved_rate: float,
        source: PacketSource,
        regulator: Optional[IntervalRegulator] = None,
    ) -> None:
        """Attach a channel: its reservation, its source, optionally an
        interval-QoS regulator that sheds overload packets."""
        if channel_id in self._setups:
            raise SimulationError(f"channel {channel_id} already added")
        if source.channel_id != channel_id:
            raise SimulationError(
                f"source is for channel {source.channel_id}, not {channel_id}"
            )
        self._setups[channel_id] = _ChannelSetup(
            reserved_rate=reserved_rate, source=source, regulator=regulator
        )

    def run(self, horizon: float) -> LinkSimulationReport:
        """Generate, regulate, schedule and transmit packets for
        ``horizon`` seconds of source time; drain the backlog at the end.

        A packet is offered to its regulator with ``drop_requested`` set
        when the channel's traffic is running ahead of its *reservation*
        (the standard congestion signal: the queue for that channel
        holds more than one reservation-interval of data).
        """
        if not self._setups:
            raise SimulationError("no channels attached to the link")
        scheduler = FairLinkScheduler(self.capacity)
        report = LinkSimulationReport(horizon=horizon)
        for cid, setup in self._setups.items():
            scheduler.register_channel(cid, setup.reserved_rate)
            report.stats[cid] = ChannelDeliveryStats(channel_id=cid)

        streams = [setup.source.packets_until(horizon) for setup in self._setups.values()]
        arrivals = list(merge_streams(streams))
        #: bits admitted per channel so far — used for the overload signal.
        admitted_bits: Dict[int, float] = {cid: 0.0 for cid in self._setups}

        def admit(packet: Packet) -> None:
            setup = self._setups[packet.channel_id]
            stats = report.stats[packet.channel_id]
            stats.record_offered(packet)
            # Overload signal: admitted traffic runs ahead of what the
            # reservation could have carried since time zero.
            ahead = (
                admitted_bits[packet.channel_id]
                > setup.reserved_rate * max(packet.created_at, 1e-12)
            )
            if setup.regulator is not None and not setup.regulator.offer(
                drop_requested=ahead
            ):
                stats.record_drop()
                return
            admitted_bits[packet.channel_id] += packet.size
            scheduler.enqueue(packet, now=packet.created_at)

        # Event loop: whenever the transmitter is free at time ``free``,
        # every packet that has arrived by then competes (WFQ stamps);
        # when the queue is empty the clock jumps to the next arrival.
        # Deliveries departing after the horizon are NOT credited: they
        # are reported as the channel's end-of-run backlog, so measured
        # throughput is honest about what the horizon actually carried.
        index = 0
        free = 0.0
        report.undelivered = {cid: 0 for cid in self._setups}
        while (index < len(arrivals) or scheduler.backlog) and free < horizon:
            if scheduler.backlog == 0:
                free = max(free, arrivals[index].created_at)
                if free >= horizon:
                    break
            while index < len(arrivals) and arrivals[index].created_at <= free + 1e-12:
                admit(arrivals[index])
                index += 1
            if scheduler.backlog == 0:
                continue  # everything admitted so far was dropped
            delivery = scheduler.next_departure(free)
            assert delivery is not None
            free = delivery.departed_at
            if free <= horizon + 1e-12:
                report.stats[delivery.packet.channel_id].record_delivery(delivery)
            else:
                report.undelivered[delivery.packet.channel_id] += 1
        # Account packets never offered to the transmitter.
        while index < len(arrivals):
            admit(arrivals[index])
            index += 1
        for delivery in scheduler.drain(free):
            report.undelivered[delivery.packet.channel_id] += 1
        return report
