"""Traffic sources generating packet streams from traffic specs.

The client side of the run-time phase: sources emit the packet streams
that the link scheduler must carry.  Two classic models:

* :class:`CbrSource` — constant bit rate (the smooth video stream of
  the paper's example);
* :class:`OnOffSource` — exponential on/off bursts, the standard model
  for bursty sources bounded by a :class:`~repro.qos.spec.TrafficSpec`.

Sources are deterministic given their RNG, and emit
:class:`~repro.runtime.packets.Packet` objects with increasing
timestamps.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.errors import SimulationError
from repro.runtime.packets import Packet


class CbrSource:
    """Constant-bit-rate source: equally spaced packets at ``rate`` Kb/s."""

    def __init__(self, channel_id: int, rate: float, packet_size: float = 10.0) -> None:
        if rate <= 0:
            raise SimulationError(f"rate must be positive, got {rate}")
        if packet_size <= 0:
            raise SimulationError(f"packet size must be positive, got {packet_size}")
        self.channel_id = channel_id
        self.rate = rate
        self.packet_size = packet_size

    def packets_until(self, horizon: float) -> List[Packet]:
        """All packets generated in ``[0, horizon)``."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        interval = self.packet_size / self.rate
        out: List[Packet] = []
        t = 0.0
        seq = 0
        while t < horizon:
            out.append(
                Packet(
                    channel_id=self.channel_id,
                    size=self.packet_size,
                    created_at=t,
                    sequence=seq,
                )
            )
            seq += 1
            t += interval
        return out


class OnOffSource:
    """Exponential on/off source: peak-rate bursts, silent gaps.

    During an "on" period (mean ``mean_on`` seconds) packets are emitted
    back-to-back at ``peak_rate``; "off" periods (mean ``mean_off``) are
    silent.  The long-run average rate is
    ``peak_rate * mean_on / (mean_on + mean_off)``.
    """

    def __init__(
        self,
        channel_id: int,
        peak_rate: float,
        mean_on: float,
        mean_off: float,
        rng: np.random.Generator,
        packet_size: float = 10.0,
    ) -> None:
        if peak_rate <= 0:
            raise SimulationError(f"peak rate must be positive, got {peak_rate}")
        if mean_on <= 0 or mean_off < 0:
            raise SimulationError("mean_on must be positive, mean_off non-negative")
        if packet_size <= 0:
            raise SimulationError(f"packet size must be positive, got {packet_size}")
        self.channel_id = channel_id
        self.peak_rate = peak_rate
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.rng = rng
        self.packet_size = packet_size

    @property
    def average_rate(self) -> float:
        """Long-run average emission rate (Kb/s)."""
        cycle = self.mean_on + self.mean_off
        return self.peak_rate * self.mean_on / cycle if cycle > 0 else self.peak_rate

    def packets_until(self, horizon: float) -> List[Packet]:
        """All packets generated in ``[0, horizon)``."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        interval = self.packet_size / self.peak_rate
        out: List[Packet] = []
        t = 0.0
        seq = 0
        while t < horizon:
            on_len = float(self.rng.exponential(self.mean_on))
            burst_end = min(horizon, t + on_len)
            while t < burst_end:
                out.append(
                    Packet(
                        channel_id=self.channel_id,
                        size=self.packet_size,
                        created_at=t,
                        sequence=seq,
                    )
                )
                seq += 1
                t += interval
            if self.mean_off > 0:
                t = max(t, burst_end) + float(self.rng.exponential(self.mean_off))
            else:
                t = max(t, burst_end)
        return out


def merge_streams(streams: List[List[Packet]]) -> Iterator[Packet]:
    """Merge per-source packet lists into one time-ordered stream.

    Ties are broken by (channel id, sequence) so merging is
    deterministic.
    """
    tagged = [pkt for stream in streams for pkt in stream]
    tagged.sort(key=lambda p: (p.created_at, p.channel_id, p.sequence))
    return iter(tagged)
