"""Run-time message scheduling substrate (paper §2.1, second phase).

The establishment layer (:mod:`repro.channels`) reserves bandwidth;
this package shows the reservation being *delivered*: weighted-fair
packet scheduling per link, traffic sources, and a single-link
simulation tying in the interval-QoS regulators.
"""

from __future__ import annotations

from repro.runtime.link_sim import LinkSimulation, LinkSimulationReport
from repro.runtime.path_sim import PathSimulation, PathSimulationReport
from repro.runtime.packets import ChannelDeliveryStats, Delivery, Packet
from repro.runtime.scheduler import FairLinkScheduler
from repro.runtime.sources import CbrSource, OnOffSource, merge_streams

__all__ = [
    "LinkSimulation",
    "LinkSimulationReport",
    "PathSimulation",
    "PathSimulationReport",
    "ChannelDeliveryStats",
    "Delivery",
    "Packet",
    "FairLinkScheduler",
    "CbrSource",
    "OnOffSource",
    "merge_streams",
]
