"""Weighted-fair link scheduler honouring per-channel reservations.

The run-time message scheduler of a link must deliver to each real-time
channel (at least) its reserved bandwidth regardless of what the other
channels do.  This module implements the classic *virtual-clock /
weighted fair queueing* discipline:

* each registered channel has a reserved rate ``r_i`` (Kb/s) — exactly
  the quantised elastic level the establishment layer granted;
* an arriving packet of size ``L`` is stamped with a virtual finish
  time ``F = max(now_virtual, F_prev(channel)) + L / r_i``;
* the transmitter always sends the pending packet with the smallest
  stamp (ties broken by channel id, then sequence — deterministic).

Rates may be updated while packets are queued (elastic level changes at
run time); stamps already issued keep their old rate, which matches how
a real pacer drains its backlog.

The scheduler is work-conserving: spare capacity is shared in stamp
order, so under-loaded channels never throttle the link.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.runtime.packets import Delivery, Packet


@dataclass
class _ChannelState:
    rate: float
    last_finish: float = 0.0
    queued: int = 0


class FairLinkScheduler:
    """Virtual-clock scheduler for one link of known capacity."""

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"link capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._channels: Dict[int, _ChannelState] = {}
        #: (finish stamp, channel id, sequence, packet)
        self._queue: List[Tuple[float, int, int, Packet]] = []
        self._busy_until = 0.0

    # ------------------------------------------------------------------
    # channel management
    # ------------------------------------------------------------------
    def register_channel(self, channel_id: int, rate: float) -> None:
        """Register a channel with its reserved rate (Kb/s)."""
        if channel_id in self._channels:
            raise SimulationError(f"channel {channel_id} already registered")
        if rate <= 0:
            raise SimulationError(f"rate must be positive, got {rate}")
        self._channels[channel_id] = _ChannelState(rate=rate)

    def update_rate(self, channel_id: int, rate: float) -> None:
        """Change a channel's reserved rate (elastic level change)."""
        if rate <= 0:
            raise SimulationError(f"rate must be positive, got {rate}")
        self._state(channel_id).rate = rate

    def unregister_channel(self, channel_id: int) -> None:
        """Remove a channel; its queue must be empty."""
        state = self._state(channel_id)
        if state.queued:
            raise SimulationError(
                f"channel {channel_id} still has {state.queued} queued packets"
            )
        del self._channels[channel_id]

    def rate_of(self, channel_id: int) -> float:
        """The channel's current reserved rate."""
        return self._state(channel_id).rate

    def total_reserved(self) -> float:
        """Sum of registered rates (should not exceed the capacity for
        guarantees to hold; the scheduler itself stays work-conserving
        either way)."""
        return sum(state.rate for state in self._channels.values())

    def _state(self, channel_id: int) -> _ChannelState:
        try:
            return self._channels[channel_id]
        except KeyError:
            raise SimulationError(f"unknown channel {channel_id}") from None

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> None:
        """Accept a packet at time ``now`` and stamp it."""
        state = self._state(packet.channel_id)
        start = max(now, state.last_finish)
        finish = start + packet.size / state.rate
        state.last_finish = finish
        state.queued += 1
        heapq.heappush(self._queue, (finish, packet.channel_id, packet.sequence, packet))

    @property
    def backlog(self) -> int:
        """Packets currently queued."""
        return len(self._queue)

    def next_departure(self, now: float) -> Optional[Delivery]:
        """Transmit the next packet; returns its delivery record.

        The departure time accounts for the transmitter being busy with
        the previous packet and for the actual wire time
        ``size / capacity``.  Returns ``None`` when idle.
        """
        if not self._queue:
            return None
        _, _, _, packet = heapq.heappop(self._queue)
        self._channels[packet.channel_id].queued -= 1
        start = max(now, self._busy_until, packet.created_at)
        departed = start + packet.size / self.capacity
        self._busy_until = departed
        return Delivery(packet=packet, departed_at=departed)

    def drain(self, now: float) -> List[Delivery]:
        """Transmit everything queued, in stamp order."""
        out: List[Delivery] = []
        while self._queue:
            delivery = self.next_departure(now)
            assert delivery is not None
            out.append(delivery)
            now = delivery.departed_at
        return out
