"""Packet-level primitives for the run-time scheduling substrate.

The realization of a real-time channel "consists of two phases: off-line
channel establishment and run-time message scheduling" (paper §2.1.1).
The rest of this library implements the first phase; the
:mod:`repro.runtime` package implements the second: "each link resource
manager schedules messages belonging to different real-time channels to
satisfy their respective timeliness requirements."

This module holds the shared data types: packets and per-channel
delivery statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class Packet:
    """One fixed-size message belonging to a real-time channel.

    Attributes:
        channel_id: The owning channel.
        size: Packet size in kilobits (so that size / rate-in-Kb/s is a
            time in the library's time unit, seconds).
        created_at: Generation timestamp at the source.
        sequence: Per-channel sequence number (0-based).
    """

    channel_id: int
    size: float
    created_at: float
    sequence: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError(f"packet size must be positive, got {self.size}")
        if self.created_at < 0:
            raise SimulationError("packet creation time cannot be negative")


@dataclass
class Delivery:
    """Delivery record of one packet."""

    packet: Packet
    departed_at: float

    @property
    def delay(self) -> float:
        """Queueing + transmission delay experienced by the packet."""
        return self.departed_at - self.packet.created_at


@dataclass
class ChannelDeliveryStats:
    """Per-channel delivery statistics collected by the link simulator."""

    channel_id: int
    offered_packets: int = 0
    delivered_packets: int = 0
    dropped_packets: int = 0
    offered_bits: float = 0.0
    delivered_bits: float = 0.0
    delays: List[float] = field(default_factory=list)

    def record_offered(self, packet: Packet) -> None:
        """Account a packet arriving at the link."""
        self.offered_packets += 1
        self.offered_bits += packet.size

    def record_delivery(self, delivery: Delivery) -> None:
        """Account a packet leaving the link."""
        self.delivered_packets += 1
        self.delivered_bits += delivery.packet.size
        self.delays.append(delivery.delay)

    def record_drop(self) -> None:
        """Account a packet dropped by a regulator."""
        self.dropped_packets += 1

    def throughput(self, duration: float) -> float:
        """Delivered rate in Kb/s over ``duration`` seconds."""
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration}")
        return self.delivered_bits / duration

    @property
    def mean_delay(self) -> Optional[float]:
        """Mean delivery delay, or ``None`` with no deliveries."""
        return sum(self.delays) / len(self.delays) if self.delays else None

    @property
    def max_delay(self) -> Optional[float]:
        """Worst delivery delay, or ``None`` with no deliveries."""
        return max(self.delays) if self.delays else None

    @property
    def loss_ratio(self) -> float:
        """Dropped fraction of offered packets."""
        return self.dropped_packets / self.offered_packets if self.offered_packets else 0.0
