"""Multi-hop path simulation: end-to-end delivery over a channel's route.

A real-time channel's packets traverse every link of its path, each with
its own fair scheduler.  :class:`PathSimulation` chains
:class:`~repro.runtime.scheduler.FairLinkScheduler` instances: the
departure stream of hop *k* is the arrival stream of hop *k+1*, so
end-to-end delay is the sum of per-hop queueing and transmission.  This
is the run-time face of the establishment layer's per-path reservations
(the same bandwidth is reserved on every link of a path, so a conforming
stream flows through every hop without accumulating backlog).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import SimulationError
from repro.runtime.packets import ChannelDeliveryStats, Delivery, Packet
from repro.runtime.scheduler import FairLinkScheduler


@dataclass
class PathSimulationReport:
    """Outcome of a multi-hop packet replay."""

    horizon: float
    hops: int
    stats: Dict[int, ChannelDeliveryStats] = field(default_factory=dict)

    def end_to_end_mean_delay(self, channel_id: int) -> float:
        """Mean end-to-end delay of one channel's delivered packets.

        Raises:
            SimulationError: when the channel delivered nothing.
        """
        delay = self.stats[channel_id].mean_delay
        if delay is None:
            raise SimulationError(f"channel {channel_id} delivered no packets")
        return delay


class PathSimulation:
    """Replay packet streams across a chain of link schedulers.

    Every channel is assumed to traverse the whole chain (the common
    case for one DR-connection's path; cross-traffic channels that only
    use some hops can be modelled by giving them their own simulation —
    the scheduler state is what matters, and tests exercise that via
    per-hop capacities).
    """

    def __init__(self, capacities: Sequence[float]) -> None:
        if not capacities:
            raise SimulationError("a path needs at least one link")
        self.capacities = list(capacities)
        self._rates: Dict[int, float] = {}

    def add_channel(self, channel_id: int, reserved_rate: float) -> None:
        """Register a channel with the rate reserved on every hop."""
        if channel_id in self._rates:
            raise SimulationError(f"channel {channel_id} already added")
        if reserved_rate <= 0:
            raise SimulationError(f"rate must be positive, got {reserved_rate}")
        self._rates[channel_id] = reserved_rate

    def run(self, streams: Dict[int, List[Packet]], horizon: float) -> PathSimulationReport:
        """Push per-channel packet streams through every hop in order.

        Args:
            streams: ``channel_id -> packets`` entering the first hop.
            horizon: Accounting horizon (passed to throughput maths);
                all packets are drained so per-hop dynamics stay exact.
        """
        if set(streams) - set(self._rates):
            raise SimulationError(
                f"streams for unregistered channels: {sorted(set(streams) - set(self._rates))}"
            )
        report = PathSimulationReport(horizon=horizon, hops=len(self.capacities))
        for cid in self._rates:
            report.stats[cid] = ChannelDeliveryStats(channel_id=cid)
        current: List[Packet] = sorted(
            (pkt for pkts in streams.values() for pkt in pkts),
            key=lambda p: (p.created_at, p.channel_id, p.sequence),
        )
        for pkt in current:
            report.stats[pkt.channel_id].record_offered(pkt)

        for hop, capacity in enumerate(self.capacities):
            scheduler = FairLinkScheduler(capacity)
            for cid, rate in self._rates.items():
                scheduler.register_channel(cid, rate)
            deliveries: List[Delivery] = []
            now = 0.0
            index = 0
            while index < len(current) or scheduler.backlog:
                if scheduler.backlog == 0:
                    now = max(now, current[index].created_at)
                while index < len(current) and current[index].created_at <= now + 1e-12:
                    scheduler.enqueue(current[index], now=current[index].created_at)
                    index += 1
                delivery = scheduler.next_departure(now)
                assert delivery is not None
                deliveries.append(delivery)
                now = delivery.departed_at
            # The departures become the next hop's arrivals; the packet's
            # original creation time is preserved so the final delay is
            # end to end.
            next_wave: List[Packet] = []
            for delivery in deliveries:
                pkt = delivery.packet
                next_wave.append(
                    Packet(
                        channel_id=pkt.channel_id,
                        size=pkt.size,
                        created_at=delivery.departed_at,
                        sequence=pkt.sequence,
                    )
                )
            if hop == len(self.capacities) - 1:
                for delivery, original in zip(deliveries, _originals(deliveries, streams)):
                    report.stats[delivery.packet.channel_id].record_delivery(
                        Delivery(packet=original, departed_at=delivery.departed_at)
                    )
            current = sorted(
                next_wave, key=lambda p: (p.created_at, p.channel_id, p.sequence)
            )
        return report


def _originals(
    deliveries: List[Delivery], streams: Dict[int, List[Packet]]
) -> List[Packet]:
    """Map final-hop deliveries back to the original source packets."""
    lookup: Dict[tuple, Packet] = {
        (pkt.channel_id, pkt.sequence): pkt
        for pkts in streams.values()
        for pkt in pkts
    }
    out: List[Packet] = []
    for delivery in deliveries:
        key = (delivery.packet.channel_id, delivery.packet.sequence)
        try:
            out.append(lookup[key])
        except KeyError:
            raise SimulationError(f"delivery of unknown packet {key}") from None
    return out
