"""Time-weighted measurement of channel-centric metrics.

The paper's performance metric is "the average bandwidth reserved for
each primary channel".  In a continuous-time simulation the right
estimator is the *time-weighted* mean: between two events the network
is frozen, so the instantaneous per-channel average bandwidth is
integrated over each inter-event interval.  The same integrator also
tracks the live population and (on sampled instants) the empirical
level-occupancy distribution — the simulation-side analogue of the
Markov chain's stationary π, used to validate the model state by state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError


@dataclass
class MeasurementResult:
    """Final measurements of one simulation run."""

    average_bandwidth: float
    final_average_bandwidth: float
    average_population: float
    level_occupancy: np.ndarray
    duration: float
    samples: int

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"avg bandwidth {self.average_bandwidth:.1f} Kb/s over "
            f"{self.duration:.0f} time units ({self.samples} occupancy samples, "
            f"avg population {self.average_population:.0f})"
        )


class Measurement:
    """Accumulates time-weighted statistics between simulation events."""

    def __init__(self, num_levels: int, occupancy_interval: int = 10) -> None:
        if num_levels < 1:
            raise SimulationError(f"need at least one level, got {num_levels}")
        if occupancy_interval < 1:
            raise SimulationError("occupancy interval must be >= 1")
        self.num_levels = num_levels
        self.occupancy_interval = occupancy_interval
        self._start: Optional[float] = None
        self._last_time: Optional[float] = None
        self._bw_integral = 0.0
        self._pop_integral = 0.0
        self._last_bw = 0.0
        self._last_pop = 0.0
        self._occupancy = np.zeros(num_levels)
        self._occupancy_samples = 0
        self._advances = 0

    def begin(self, time: float, average_bandwidth: float, population: int) -> None:
        """Start measuring at ``time`` with the current network state."""
        self._start = time
        self._last_time = time
        self._last_bw = average_bandwidth
        self._last_pop = float(population)

    def advance(
        self,
        time: float,
        average_bandwidth: float,
        population: int,
        level_histogram: Optional[List[int]] = None,
    ) -> None:
        """Account the interval since the last call, then update state.

        Call immediately *before* applying each event, passing the
        pre-event network metrics; the interval that just elapsed was
        spent in the pre-event state.

        Args:
            time: Current simulation time.
            average_bandwidth: Mean live-connection bandwidth right now.
            population: Live connection count right now.
            level_histogram: When provided (sampled events), folded into
                the empirical occupancy distribution.
        """
        if self._last_time is None:
            raise SimulationError("Measurement.advance called before begin")
        if time < self._last_time - 1e-9:
            raise SimulationError(
                f"time went backwards: {time} after {self._last_time}"
            )
        dt = max(0.0, time - self._last_time)
        self._bw_integral += self._last_bw * dt
        self._pop_integral += self._last_pop * dt
        self._last_time = time
        self._last_bw = average_bandwidth
        self._last_pop = float(population)
        self._advances += 1
        if level_histogram is not None:
            hist = np.asarray(level_histogram, dtype=float)
            if hist.shape != (self.num_levels,):
                raise SimulationError(
                    f"histogram has {hist.shape} levels, expected {self.num_levels}"
                )
            total = hist.sum()
            if total > 0:
                self._occupancy += hist / total
                self._occupancy_samples += 1

    @property
    def wants_occupancy(self) -> bool:
        """Whether the next advance falls on an occupancy sampling instant."""
        return self._advances % self.occupancy_interval == 0

    def result(self) -> MeasurementResult:
        """Finalise and return the measurements.

        Raises:
            SimulationError: when no time was measured at all.
        """
        if self._start is None or self._last_time is None:
            raise SimulationError("Measurement.result called before begin")
        duration = self._last_time - self._start
        if duration <= 0:
            raise SimulationError("measurement window has zero duration")
        occupancy = (
            self._occupancy / self._occupancy_samples
            if self._occupancy_samples
            else np.zeros(self.num_levels)
        )
        return MeasurementResult(
            average_bandwidth=self._bw_integral / duration,
            final_average_bandwidth=self._last_bw,
            average_population=self._pop_integral / duration,
            level_occupancy=occupancy,
            duration=duration,
            samples=self._occupancy_samples,
        )
