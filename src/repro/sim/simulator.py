"""The end-to-end elastic-QoS DR-connection simulator.

Ties together topology, network manager, workload, measurement and
parameter estimation, reproducing the paper's experimental procedure
(§4): establish an initial population of DR-connections, then "generate
and terminate randomly a certain number of DR-connections while
maintaining the number of DR-connections in the network close to the
initial number", measuring the average reserved bandwidth and the
transition statistics the Markov model needs.

Population setup intentionally grants no elastic extras while the
initial connections are admitted and then runs a single global
water-fill: this is both faster and closer to the paper's procedure
(probabilities are measured "after setting up a certain number of
DR-connections"); the subsequent warm-up churn erases any residual
difference from fully sequential establishment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.channels import MANAGER_CORES, make_manager
from repro.channels.records import ManagerStats
from repro.elastic.policies import AdaptationPolicy
from repro.errors import SimulationError
from repro.faults.audit import AuditPolicy, Auditor
from repro.faults.injectors import FaultConfig, build_injector
from repro.markov.parameters import MarkovParameters
from repro.qos.spec import ConnectionQoS
from repro.sim.engine import EventScheduler
from repro.sim.estimation import TransitionEstimator
from repro.sim.stats import Measurement, MeasurementResult
from repro.sim.trace import TraceRecorder
from repro.sim.workload import QoSFactory, Workload, WorkloadConfig, constant_qos
from repro.topology.graph import Network

#: Setup admission modes: try exactly N requests, or insist on N accepted.
SETUP_MODES = ("offered", "accepted")


@dataclass
class SimulationConfig:
    """Everything one simulation run needs besides the topology and seed.

    Attributes:
        qos: QoS contract template used for every request (pass
            ``qos_factory`` instead for heterogeneous workloads).
        offered_connections: Initial population size parameter; its
            meaning depends on ``setup_mode`` (Table 1 counts *offered*
            set-up attempts — "the number of connections which have been
            tried to be set up").
        setup_mode: ``offered`` (try exactly N requests) or ``accepted``
            (request until N are admitted, bounded by 50 N attempts).
        workload: Stochastic churn/failure parameters.
        warmup_events: Churn events discarded before measuring.
        measure_events: Churn events measured.
        sample_interval: Every k-th arrival gets the expensive exact
            indirect-chaining classification (Ps / B estimation) and the
            occupancy histogram sample.
        routing: ``dijkstra`` or ``flooding``.
        core: Manager storage core — ``"array"`` (struct-of-arrays,
            default) or ``"object"`` (per-object reference core); both
            are bitwise-equivalent (twin-manager tests).
        policy: Adaptation policy; ``None`` means equal share (paper).
        qos_factory: Optional per-request QoS factory.
        check_invariants_every: Legacy audit knob — run the full
            invariant checker every this many events (0 = off).  Kept
            for compatibility; equivalent to
            ``audit=AuditPolicy(every_n_events=N)`` and ignored when
            ``audit`` is given.
        record_trace: Attach a :class:`~repro.sim.trace.TraceRecorder`
            covering every churn/failure event (warm-up included) to the
            result.
        faults: Optional fault-injection setup (failure process +
            backup-activation faults); ``None`` reproduces the paper's
            single-link model bit for bit.
        audit: Optional structured audit policy (periodic and/or
            after-every-failure invariant checks raising
            :class:`~repro.errors.AuditError` with an event tail).
        micro_epochs: Batch warm-up churn events whose conflict
            neighbourhoods are link-disjoint into shared deferred
            water-fills (micro-epochs, array core).  Observable results
            are bitwise identical to the sequential trajectory (the
            twin-manager suite proves it); batching is automatically
            confined to the warm-up phase and disabled when tracing or
            auditing is on, because those read per-event level
            trajectories.  The object core accepts the flag as a no-op.
    """

    qos: ConnectionQoS
    offered_connections: int
    setup_mode: str = "offered"
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    warmup_events: int = 500
    measure_events: int = 2000
    sample_interval: int = 10
    routing: str = "dijkstra"
    core: str = "array"
    policy: Optional[AdaptationPolicy] = None
    qos_factory: Optional[QoSFactory] = None
    check_invariants_every: int = 0
    record_trace: bool = False
    faults: Optional[FaultConfig] = None
    audit: Optional[AuditPolicy] = None
    micro_epochs: bool = False

    def __post_init__(self) -> None:
        if self.offered_connections < 0:
            raise SimulationError("offered_connections must be non-negative")
        if self.setup_mode not in SETUP_MODES:
            raise SimulationError(
                f"unknown setup mode {self.setup_mode!r}; choose from {SETUP_MODES}"
            )
        if self.warmup_events < 0 or self.measure_events < 1:
            raise SimulationError("need warmup_events >= 0 and measure_events >= 1")
        if self.core not in MANAGER_CORES:
            raise SimulationError(
                f"unknown manager core {self.core!r}; choose from {MANAGER_CORES}"
            )


@dataclass
class SimulationResult:
    """Everything a run produces."""

    measurement: MeasurementResult
    params: MarkovParameters
    manager_stats: ManagerStats
    initial_population: int
    offered: int
    events: int
    end_time: float
    topology_nodes: int
    topology_links: int
    trace: Optional[TraceRecorder] = None
    #: Number of invariant audits the run's :class:`AuditPolicy` executed
    #: (0 when auditing was off — a passed run with a nonzero count is
    #: positive evidence the recovery paths kept the books consistent).
    audit_checks: int = 0

    @property
    def average_bandwidth(self) -> float:
        """Time-weighted mean bandwidth per live connection (Kb/s)."""
        return self.measurement.average_bandwidth

    @property
    def level_occupancy(self) -> np.ndarray:
        """Empirical stationary level distribution (simulation π)."""
        return self.measurement.level_occupancy


class ElasticQoSSimulator:
    """One reproducible simulation run over a given topology."""

    def __init__(
        self,
        topology: Network,
        config: SimulationConfig,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.manager = make_manager(
            topology, core=config.core, policy=config.policy, routing=config.routing
        )
        factory = config.qos_factory or constant_qos(config.qos)
        self.workload = Workload(topology, factory, config.workload, self.rng)
        self.scheduler = EventScheduler()

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def establish_initial_population(self) -> int:
        """Admit the initial DR-connections; returns how many are live."""
        cfg = self.config
        manager = self.manager
        manager.auto_redistribute = False
        try:
            if cfg.setup_mode == "offered":
                for _ in range(cfg.offered_connections):
                    src, dst, qos = self.workload.next_request()
                    manager.request_connection(src, dst, qos)
            else:
                attempts = 0
                limit = 50 * max(1, cfg.offered_connections)
                while manager.num_live < cfg.offered_connections and attempts < limit:
                    src, dst, qos = self.workload.next_request()
                    manager.request_connection(src, dst, qos)
                    attempts += 1
                if manager.num_live < cfg.offered_connections:
                    raise SimulationError(
                        f"could not admit {cfg.offered_connections} connections "
                        f"in {limit} attempts (admitted {manager.num_live})"
                    )
        finally:
            manager.auto_redistribute = True
        manager.redistribute_all()
        return manager.num_live

    def run(self) -> SimulationResult:
        """Execute setup, warm-up and measurement; return the results."""
        cfg = self.config
        manager = self.manager
        initial = self.establish_initial_population()
        num_levels = cfg.qos.performance.num_levels
        gamma_network = cfg.workload.link_failure_rate * self.topology.num_links
        estimator = TransitionEstimator(
            num_levels=num_levels,
            arrival_rate=cfg.workload.arrival_rate,
            termination_rate=cfg.workload.termination_rate,
            failure_rate=gamma_network,
            sample_interval=cfg.sample_interval,
        )
        measurement = Measurement(num_levels, occupancy_interval=cfg.sample_interval)
        trace = TraceRecorder() if cfg.record_trace else None

        injector = build_injector(cfg.faults, self.topology, self.workload)
        if cfg.faults is not None and cfg.faults.activation_fault_prob > 0.0:
            manager.set_activation_faults(cfg.faults.activation_fault_prob, self.rng)
        audit_policy = cfg.audit
        if audit_policy is None and cfg.check_invariants_every:
            audit_policy = AuditPolicy(every_n_events=cfg.check_invariants_every)
        auditor = (
            Auditor(audit_policy, manager)
            if audit_policy is not None and audit_policy.enabled
            else None
        )

        total_events = cfg.warmup_events + cfg.measure_events
        next_is_arrival = True
        measuring = False
        state = manager.state
        # Micro-epoch batching: during warm-up nothing reads level
        # trajectories, so link-disjoint churn events may share one
        # deferred water-fill.  The epoch closes before the first
        # measured sample, restoring the sequential state bit for bit.
        batching = (
            cfg.micro_epochs
            and cfg.warmup_events > 0
            and trace is None
            and auditor is None
        )
        if batching:
            manager.begin_micro_epoch()

        for event_index in range(total_events):
            # The injector owns the failure/repair rates; the default
            # single-link injector returns exactly γ·alive and ρ·failed,
            # so disabled fault injection reproduces the legacy rates
            # (and rng stream) bit for bit.
            rates = self.workload.event_rates(
                state.num_alive, state.num_failed, manager.num_live
            )
            rates["failure"] = injector.failure_rate(state)
            rates["repair"] = injector.repair_rate(state)
            delay, category = self.workload.draw_from_rates(rates)
            self.scheduler.schedule_after(delay, _noop)
            self.scheduler.step()
            now = self.scheduler.now
            manager.now = now

            if not measuring and event_index >= cfg.warmup_events:
                if batching:
                    manager.end_micro_epoch()
                    batching = False
                measuring = True
                measurement.begin(now, manager.average_live_bandwidth(), manager.num_live)
            if measuring:
                hist = (
                    manager.level_histogram(num_levels)
                    if measurement.wants_occupancy
                    else None
                )
                measurement.advance(
                    now, manager.average_live_bandwidth(), manager.num_live, hist
                )

            pre_live = manager.num_live
            impact = None
            if category == "churn":
                impact, next_is_arrival = self._churn_event(next_is_arrival)
            elif category == "failure":
                impact = injector.inject_failure(manager)
            elif category == "repair":
                impact = injector.inject_repair(manager)

            if measuring and impact is not None:
                estimator.observe(impact, manager, pre_live)
            if trace is not None and impact is not None:
                trace.record(impact, manager.num_live, manager.average_live_bandwidth())
            if auditor is not None:
                auditor.observe(event_index, category, impact)

        # Close the final interval so the last state is weighted too.
        if measuring:
            measurement.advance(
                self.scheduler.now, manager.average_live_bandwidth(), manager.num_live
            )

        return SimulationResult(
            measurement=measurement.result(),
            params=estimator.estimate(),
            manager_stats=manager.stats,
            initial_population=initial,
            offered=cfg.offered_connections,
            events=total_events,
            end_time=self.scheduler.now,
            topology_nodes=self.topology.num_nodes,
            topology_links=self.topology.num_links,
            trace=trace,
            audit_checks=auditor.checks_run if auditor is not None else 0,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _churn_event(self, next_is_arrival: bool):
        """One churn event honouring balanced alternation."""
        manager = self.manager
        cfg = self.config.workload
        if not cfg.balanced:
            lam, mu = cfg.arrival_rate, cfg.termination_rate
            total = lam + (mu if manager.num_live else 0.0)
            arrival = bool(self.rng.random() < lam / total) if total > 0 else True
        else:
            arrival = next_is_arrival or manager.num_live == 0
        if arrival:
            src, dst, qos = self.workload.next_request()
            _conn, impact = manager.request_connection(src, dst, qos)
            # Balanced mode owes a termination only after an acceptance.
            return impact, not (cfg.balanced and impact.accepted)
        victim = self.workload.pick_termination(manager.live_connection_ids())
        impact = manager.terminate_connection(victim)
        return impact, True


def _noop() -> None:
    """Placeholder action: the simulator only uses the engine's clock."""
