"""Estimating the Markov-model parameters from simulation events.

Section 3.3: "since the network considered here is a random
point-to-point network like the Internet, it is almost impossible to
find closed-form expressions for these transition probabilities ...
we derived them using realistic simulations."  This module turns the
:class:`~repro.channels.records.EventImpact` stream produced by the
network manager into :class:`~repro.markov.parameters.MarkovParameters`:

* ``A`` — level transitions of directly-chained channels on arrivals
  (complete per event: the manager reports every directly-chained
  channel, including those that did not move);
* ``T`` — level transitions of directly-chained channels on
  terminations (complete per event);
* ``F`` — level transitions of channels affected by failures
  (extension; the paper reuses ``A`` for failures);
* ``B`` and ``Ps`` — indirect-chaining requires walking two hops of the
  channel-overlap relation, which is too expensive per event, so it is
  computed exactly on every ``sample_interval``-th arrival (both the
  moved and unmoved indirect channels, keeping the estimate unbiased);
* ``Pf`` — fraction of pre-existing channels directly chained with the
  event channel, averaged over all arrival/termination events.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.channels.manager import NetworkManager
from repro.channels.records import EventImpact, EventKind
from repro.errors import EstimationError
from repro.markov.parameters import MarkovParameters


class TransitionEstimator:
    """Accumulates event observations into Markov-model parameters."""

    def __init__(
        self,
        num_levels: int,
        arrival_rate: float,
        termination_rate: float,
        failure_rate: float = 0.0,
        sample_interval: int = 10,
    ) -> None:
        if num_levels < 1:
            raise EstimationError(f"need at least one level, got {num_levels}")
        if sample_interval < 1:
            raise EstimationError(f"sample interval must be >= 1, got {sample_interval}")
        self.num_levels = num_levels
        self.arrival_rate = arrival_rate
        self.termination_rate = termination_rate
        self.failure_rate = failure_rate
        self.sample_interval = sample_interval

        n = num_levels
        self.a_counts = np.zeros((n, n))
        self.b_counts = np.zeros((n, n))
        self.t_counts = np.zeros((n, n))
        self.f_counts = np.zeros((n, n))
        self._pf_weighted_sum = 0.0
        self._pf_events = 0
        self._ps_weighted_sum = 0.0
        self._ps_events = 0
        self._arrivals_seen = 0
        self._failures_seen = 0

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe(
        self, impact: EventImpact, manager: NetworkManager, pre_event_live: int
    ) -> None:
        """Fold one event's impact into the running counts.

        Args:
            impact: The manager's report for the event.
            manager: The manager, in its *post-event* state (used only
                on sampled events, to enumerate indirect channels).
            pre_event_live: Number of live connections immediately
                before the event (the Pf/Ps denominator).
        """
        if impact.kind is EventKind.ARRIVAL:
            self._observe_arrival(impact, manager, pre_event_live)
        elif impact.kind is EventKind.TERMINATION:
            self._observe_counts(self.t_counts, impact)
            self._observe_pf(impact, pre_event_live)
        elif impact.kind is EventKind.FAILURE:
            self._failures_seen += 1
            self._observe_counts(self.f_counts, impact)
        # REPAIR events do not move channels (no fail-back).

    def _observe_arrival(
        self, impact: EventImpact, manager: NetworkManager, pre_event_live: int
    ) -> None:
        self._arrivals_seen += 1
        self._observe_counts(self.a_counts, impact)
        self._observe_pf(impact, pre_event_live)
        if not impact.accepted:
            return
        if self._arrivals_seen % self.sample_interval:
            return
        indirect = self._indirect_set(impact, manager)
        if pre_event_live > 0:
            self._ps_weighted_sum += len(indirect) / pre_event_live
            self._ps_events += 1
        top = self.num_levels - 1
        for cid in indirect:
            if cid in impact.indirect_changed:
                before, after = impact.indirect_changed[cid]
            else:
                conn = manager.connections.get(cid)
                if conn is None:
                    continue
                before = after = conn.level
            self.b_counts[min(before, top), min(after, top)] += 1

    def _observe_counts(self, counts: np.ndarray, impact: EventImpact) -> None:
        top = self.num_levels - 1
        for before, after in impact.direct.values():
            # Heterogeneous workloads may contain contracts with more
            # levels than the template chain; clip into the top state.
            counts[min(before, top), min(after, top)] += 1

    def _observe_pf(self, impact: EventImpact, pre_event_live: int) -> None:
        if pre_event_live > 0:
            self._pf_weighted_sum += len(impact.direct) / pre_event_live
            self._pf_events += 1

    def _indirect_set(self, impact: EventImpact, manager: NetworkManager) -> Set[int]:
        """Channels indirectly chained with the event channel.

        Two hops in the overlap relation: channels sharing a link with a
        directly-chained channel, minus the direct set and the event's
        own connection.  Uses the maintained per-link index, so the cost
        is a few thousand C-speed set updates.
        """
        direct_ids = set(impact.direct)
        indirect: Set[int] = set()
        on_link = manager.channels_on_link
        for cid in direct_ids:
            conn = manager.connections.get(cid)
            if conn is None:
                continue  # dropped by a failure during this event
            for lid in conn.primary_links:
                indirect.update(on_link.get(lid, ()))
        indirect -= direct_ids
        if impact.conn_id is not None:
            indirect.discard(impact.conn_id)
        return indirect

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    @property
    def pf(self) -> float:
        """Current direct-chaining probability estimate."""
        if self._pf_events == 0:
            raise EstimationError("no events observed; Pf is undefined")
        return self._pf_weighted_sum / self._pf_events

    @property
    def ps(self) -> float:
        """Current indirect-chaining probability estimate."""
        if self._ps_events == 0:
            raise EstimationError("no sampled arrivals observed; Ps is undefined")
        return self._ps_weighted_sum / self._ps_events

    def estimate(self, use_failure_matrix: bool = False) -> MarkovParameters:
        """Produce validated :class:`MarkovParameters` from the counts.

        Rows with no observations become uniform rows so that unvisited
        levels cannot form spurious absorbing states (see
        :func:`_normalise`).

        Args:
            use_failure_matrix: Attach the separately measured failure
                matrix ``F`` (extension) instead of letting the model
                reuse ``A`` as the paper does.
        """
        if self._pf_events == 0 and self._failures_seen == 0:
            raise EstimationError("cannot estimate parameters before any events")
        pf = self.pf if self._pf_events else 0.0
        ps = self.ps if self._ps_events else 0.0
        # Numerical guard: the two chaining probabilities are estimated
        # from different samples and may overshoot 1.0 jointly.
        if pf + ps > 1.0:
            scale = 1.0 / (pf + ps)
            pf *= scale
            ps *= scale
        f_matrix: Optional[np.ndarray] = None
        if use_failure_matrix and self.f_counts.sum() > 0:
            f_matrix = _normalise(self.f_counts)
        return MarkovParameters(
            num_levels=self.num_levels,
            pf=pf,
            ps=ps,
            a=_normalise(self.a_counts),
            b=_normalise(self.b_counts),
            t=_normalise(self.t_counts),
            arrival_rate=self.arrival_rate,
            termination_rate=self.termination_rate,
            failure_rate=self.failure_rate,
            f=f_matrix,
            observations={
                "a": int(self.a_counts.sum()),
                "b": int(self.b_counts.sum()),
                "t": int(self.t_counts.sum()),
                "f": int(self.f_counts.sum()),
                "pf_events": self._pf_events,
                "ps_events": self._ps_events,
            },
        )


def _normalise(counts: np.ndarray) -> np.ndarray:
    """Row-normalise a count matrix; empty rows become uniform rows.

    A level the simulation never visited carries (near-)zero stationary
    mass, but an identity row would make it an *absorbing* state and
    break the chain into multiple closed classes (singular steady-state
    system).  A uniform row is the non-informative choice that keeps the
    chain irreducible while leaving unvisited states with no stationary
    mass unless transitions genuinely flow into them.
    """
    out = counts.astype(float).copy()
    n = out.shape[0]
    for i, row_sum in enumerate(out.sum(axis=1)):
        if row_sum > 0:
            out[i] /= row_sum
        else:
            out[i, :] = 1.0 / n
    return out
