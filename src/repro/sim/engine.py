"""A small deterministic discrete-event scheduling engine.

The paper's evaluation relies on "detailed simulations"; this engine is
the substrate those simulations run on (simpy is not available offline —
DESIGN.md substitution 4).  It is a classic binary-heap event loop:

* events are ``(time, sequence, action)`` triples; the monotonically
  increasing sequence number makes simultaneous events fire in
  scheduling order, so runs are bit-for-bit reproducible;
* cancellation is lazy (a tombstone set) — O(1) cancel, amortised cost
  paid at pop time.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Set, Tuple

from repro.errors import SimulationError

#: An event action: a zero-argument callable (usually a closure).
Action = Callable[[], None]


class EventScheduler:
    """Deterministic event loop with virtual time."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, int, Action]] = []
        self._seq: int = 0
        self._cancelled: Set[int] = set()
        self._events_run: int = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, action: Action) -> int:
        """Schedule ``action`` at absolute ``time``; returns a handle.

        Raises:
            SimulationError: if ``time`` lies in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}; current time is {self.now}"
            )
        handle = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (time, handle, handle, action))
        return handle

    def schedule_after(self, delay: float, action: Action) -> int:
        """Schedule ``action`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, action)

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled event (idempotent; firing is skipped)."""
        self._cancelled.add(handle)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of pending (possibly cancelled) events."""
        return len(self._heap)

    @property
    def events_run(self) -> int:
        """How many events have fired so far."""
        return self._events_run

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when empty."""
        while self._heap and self._heap[0][1] in self._cancelled:
            _, handle, _, _ = heapq.heappop(self._heap)
            self._cancelled.discard(handle)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Fire the next event; returns False when nothing is pending."""
        while self._heap:
            time, handle, _, action = heapq.heappop(self._heap)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self.now = time
            self._events_run += 1
            action()
            return True
        return False

    def run(self, max_events: Optional[int] = None, until: Optional[float] = None) -> int:
        """Run events until exhaustion, ``max_events``, or time ``until``.

        Returns the number of events fired by this call.  ``until`` is
        inclusive: an event exactly at ``until`` still fires, and
        ``self.now`` is advanced to ``until`` when the queue outlives it.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                return fired
            next_time = self.peek_time()
            if next_time is None:
                return fired
            if until is not None and next_time > until:
                self.now = until
                return fired
            self.step()
            fired += 1
