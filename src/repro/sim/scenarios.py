"""Canned workload scenarios: realistic QoS mixes for examples and tests.

The paper's experiments use one homogeneous contract; real deployments
mix traffic classes.  These factories build
:data:`~repro.sim.workload.QoSFactory` callables for common mixes so
examples, tests and user code can say *what* workload they want instead
of hand-rolling per-request logic:

* :func:`video_mix` — the paper's video service with standard and
  premium tiers plus a telemetry fraction;
* :func:`utility_classes` — k utility classes with given weights;
* :func:`bandwidth_tiers` — distinct elastic ranges per tier (audio /
  SD video / HD video).

All factories are deterministic in the request index, so two runs over
the same indices get identical contracts (reproducibility without
threading an RNG through).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import QoSSpecError
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS, single_value_qos
from repro.sim.workload import QoSFactory


def video_mix(
    premium_every: int = 3,
    telemetry_every: int = 13,
    premium_utility: float = 4.0,
) -> QoSFactory:
    """The video-service mix of the paper's motivation section.

    Every ``telemetry_every``-th request is a fixed-rate 50 Kb/s
    telemetry channel; of the rest, every ``premium_every``-th is a
    premium (high-utility) video client; all others are standard video
    clients with the paper's 100..500 Kb/s range.
    """
    if premium_every < 1 or telemetry_every < 1:
        raise QoSSpecError("mix periods must be >= 1")

    def factory(index: int) -> ConnectionQoS:
        if index % telemetry_every == 0:
            return ConnectionQoS(
                performance=single_value_qos(50.0),
                dependability=DependabilityQoS(num_backups=1),
            )
        utility = premium_utility if index % premium_every == 0 else 1.0
        return ConnectionQoS(
            performance=ElasticQoS(
                b_min=100.0, b_max=500.0, increment=50.0, utility=utility
            ),
            dependability=DependabilityQoS(num_backups=1),
        )

    return factory


def utility_classes(
    utilities: Sequence[float],
    b_min: float = 100.0,
    b_max: float = 500.0,
    increment: float = 50.0,
    num_backups: int = 1,
) -> QoSFactory:
    """Round-robin over utility classes with a shared bandwidth range."""
    if not utilities:
        raise QoSSpecError("need at least one utility class")
    contracts = [
        ConnectionQoS(
            performance=ElasticQoS(
                b_min=b_min, b_max=b_max, increment=increment, utility=u
            ),
            dependability=DependabilityQoS(num_backups=num_backups),
        )
        for u in utilities
    ]

    def factory(index: int) -> ConnectionQoS:
        return contracts[index % len(contracts)]

    return factory


def bandwidth_tiers(
    tiers: Sequence[Tuple[float, float, float]],
    num_backups: int = 1,
) -> QoSFactory:
    """Round-robin over ``(b_min, b_max, increment)`` tiers.

    Example: ``bandwidth_tiers([(50, 50, 50), (100, 500, 50),
    (500, 2000, 250)])`` models audio, SD video and HD video classes.
    """
    if not tiers:
        raise QoSSpecError("need at least one bandwidth tier")
    contracts: List[ConnectionQoS] = []
    for b_min, b_max, increment in tiers:
        if b_min == b_max:
            perf = single_value_qos(b_min)
        else:
            perf = ElasticQoS(b_min=b_min, b_max=b_max, increment=increment)
        contracts.append(
            ConnectionQoS(
                performance=perf,
                dependability=DependabilityQoS(num_backups=num_backups),
            )
        )

    def factory(index: int) -> ConnectionQoS:
        return contracts[index % len(contracts)]

    return factory
