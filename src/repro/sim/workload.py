"""Workload generation: who requests what, when, and what fails.

Implements the paper's experimental workload (§4): DR-connection
requests between uniformly random node pairs, exponential inter-arrival
and holding behaviour with λ = μ ("we only analyze the steady-state
behavior"), uniformly random victim selection for terminations, and
Poisson link failures.  The paper keeps the number of connections
"close to the initial number" during measurement; ``balanced`` mode
enforces this by alternating accepted arrivals and terminations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.qos.spec import ConnectionQoS
from repro.topology.graph import LinkId, Network

#: Factory for per-request QoS contracts; receives the request index so
#: heterogeneous workloads (e.g. mixed utilities) can be generated.
QoSFactory = Callable[[int], ConnectionQoS]


def constant_qos(qos: ConnectionQoS) -> QoSFactory:
    """A factory that hands every request the same contract (the paper)."""

    def factory(_index: int) -> ConnectionQoS:
        return qos

    return factory


@dataclass
class WorkloadConfig:
    """Stochastic workload parameters.

    Attributes:
        arrival_rate: λ — network-wide DR-connection request rate.
        termination_rate: μ — network-wide termination rate (the paper
            sets μ = λ).
        link_failure_rate: γ — per-link failure rate; the total failure
            rate is γ times the number of alive links.
        repair_rate: per-failed-link repair rate; 0 means links stay
            failed (the paper models no repair, but long high-γ runs
            need repairs to avoid eroding the topology — see DESIGN.md).
        balanced: alternate accepted arrivals and terminations so the
            population stays pinned near its initial value.
    """

    arrival_rate: float = 0.001
    termination_rate: float = 0.001
    link_failure_rate: float = 0.0
    repair_rate: float = 0.0
    balanced: bool = True

    def __post_init__(self) -> None:
        for rate, name in (
            (self.arrival_rate, "arrival_rate"),
            (self.termination_rate, "termination_rate"),
            (self.link_failure_rate, "link_failure_rate"),
            (self.repair_rate, "repair_rate"),
        ):
            if rate < 0:
                raise SimulationError(f"{name} must be non-negative, got {rate}")
        if self.arrival_rate == 0 and self.termination_rate == 0 and self.link_failure_rate == 0:
            raise SimulationError("workload has no events at all")


class Workload:
    """Random decision source for one simulation run."""

    def __init__(
        self,
        topology: Network,
        qos_factory: QoSFactory,
        config: WorkloadConfig,
        rng: np.random.Generator,
    ) -> None:
        if topology.num_nodes < 2:
            raise SimulationError("workload needs a topology with at least two nodes")
        self.topology = topology
        self.qos_factory = qos_factory
        self.config = config
        self.rng = rng
        self._nodes = np.array(topology.nodes())
        self._links: List[LinkId] = topology.link_ids()
        self._request_index = 0

    # ------------------------------------------------------------------
    # request generation
    # ------------------------------------------------------------------
    def next_request(self) -> Tuple[int, int, ConnectionQoS]:
        """A fresh request: random distinct (source, destination) + QoS."""
        src, dst = self.rng.choice(self._nodes, size=2, replace=False)
        qos = self.qos_factory(self._request_index)
        self._request_index += 1
        return int(src), int(dst), qos

    def pick_termination(self, live_ids: Sequence[int]) -> int:
        """Uniformly random live connection to terminate."""
        if not live_ids:
            raise SimulationError("no live connections to terminate")
        return int(live_ids[int(self.rng.integers(len(live_ids)))])

    def pick_failure(self, alive_links: Sequence[LinkId]) -> LinkId:
        """Uniformly random alive link to fail."""
        if not alive_links:
            raise SimulationError("no alive links to fail")
        return alive_links[int(self.rng.integers(len(alive_links)))]

    def pick_repair(self, failed_links: Sequence[LinkId]) -> LinkId:
        """Uniformly random failed link to repair."""
        if not failed_links:
            raise SimulationError("no failed links to repair")
        return failed_links[int(self.rng.integers(len(failed_links)))]

    # ------------------------------------------------------------------
    # event timing (competing exponentials / Gillespie)
    # ------------------------------------------------------------------
    def event_rates(self, num_alive_links: int, num_failed_links: int, num_live: int) -> dict:
        """Current rate of each event category."""
        cfg = self.config
        return {
            "churn": cfg.arrival_rate + (cfg.termination_rate if num_live > 0 else 0.0),
            "failure": cfg.link_failure_rate * num_alive_links,
            "repair": cfg.repair_rate * num_failed_links,
        }

    def draw_event(
        self, num_alive_links: int, num_failed_links: int, num_live: int
    ) -> Tuple[float, str]:
        """Sample (delay, category) from the competing exponentials.

        Categories are ``churn`` (arrival/termination — the caller
        resolves which, honouring balanced mode), ``failure`` and
        ``repair``.
        """
        rates = self.event_rates(num_alive_links, num_failed_links, num_live)
        return self.draw_from_rates(rates)

    def draw_from_rates(self, rates: dict) -> Tuple[float, str]:
        """Sample (delay, category) from caller-supplied category rates.

        Fault injectors replace the ``failure``/``repair`` rates with
        process-specific values; feeding them through this one code path
        keeps the rng consumption (one exponential + one uniform per
        event) identical to the plain workload.
        """
        total = sum(rates.values())
        if total <= 0:
            raise SimulationError("total event rate vanished")
        delay = float(self.rng.exponential(1.0 / total))
        draw = float(self.rng.random()) * total
        acc = 0.0
        for category, rate in rates.items():
            acc += rate
            if draw <= acc:
                return delay, category
        return delay, "churn"  # numerical edge: fall back to the bulk category
