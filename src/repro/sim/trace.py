"""Structured event traces: record, export, summarise, replay-check.

A :class:`TraceRecorder` turns the simulator's event stream into a
compact, serialisable trace — one :class:`TraceRecord` per event with
the per-channel level transitions it caused.  Traces serve three
purposes:

* **debugging** — inspect exactly what a run did, event by event;
* **reproducibility** — export to JSON, attach to experiment reports;
* **validation** — :func:`verify_trace` replays the arithmetic of a
  trace (population accounting, level bounds, time monotonicity)
  independently of the simulator that produced it, so a bookkeeping bug
  in either shows up as a disagreement.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.channels.records import EventImpact, EventKind
from repro.errors import SimulationError


@dataclass
class TraceRecord:
    """One event, as it affected the channel population.

    Attributes:
        time: Simulation timestamp.
        kind: Event kind value (``arrival``/``termination``/...).
        conn_id: The event's own connection (None for failures/repairs).
        accepted: For arrivals, whether the request was admitted.
        failed_link: For failures/repairs, the link involved.
        direct: ``conn_id -> (level before, level after)`` transitions of
            directly-chained channels.
        indirect: Same for indirectly-chained channels that moved.
        activated: Connections whose backup went live.
        dropped: Connections lost to the failure.
        lost_backup: Connections left unprotected.
        population: Live connections *after* the event.
        average_bandwidth: Mean live bandwidth *after* the event (Kb/s).
    """

    time: float
    kind: str
    conn_id: Optional[int]
    accepted: bool
    failed_link: Optional[Tuple[int, int]]
    direct: Dict[int, Tuple[int, int]]
    indirect: Dict[int, Tuple[int, int]]
    activated: List[int]
    dropped: List[int]
    lost_backup: List[int]
    population: int
    average_bandwidth: float


@dataclass
class TraceSummary:
    """Aggregate view of a trace."""

    events: int = 0
    arrivals: int = 0
    accepted_arrivals: int = 0
    terminations: int = 0
    failures: int = 0
    repairs: int = 0
    level_increases: int = 0
    level_decreases: int = 0
    duration: float = 0.0

    @property
    def acceptance_ratio(self) -> float:
        """Accepted fraction of arrival events (1.0 with none)."""
        return self.accepted_arrivals / self.arrivals if self.arrivals else 1.0


class TraceRecorder:
    """Accumulates :class:`TraceRecord` entries from event impacts."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def record(
        self, impact: EventImpact, population: int, average_bandwidth: float
    ) -> None:
        """Append one event's record (call after the event was applied)."""
        self.records.append(
            TraceRecord(
                time=impact.time,
                kind=impact.kind.value,
                conn_id=impact.conn_id,
                accepted=impact.accepted,
                failed_link=impact.failed_link,
                direct=dict(impact.direct),
                indirect=dict(impact.indirect_changed),
                activated=list(impact.activated),
                dropped=list(impact.dropped),
                lost_backup=list(impact.lost_backup),
                population=population,
                average_bandwidth=average_bandwidth,
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def summary(self) -> TraceSummary:
        """Aggregate counters over the whole trace."""
        out = TraceSummary(events=len(self.records))
        for rec in self.records:
            if rec.kind == EventKind.ARRIVAL.value:
                out.arrivals += 1
                out.accepted_arrivals += int(rec.accepted)
            elif rec.kind == EventKind.TERMINATION.value:
                out.terminations += 1
            elif rec.kind == EventKind.FAILURE.value:
                out.failures += 1
            elif rec.kind == EventKind.REPAIR.value:
                out.repairs += 1
            for before, after in list(rec.direct.values()) + list(rec.indirect.values()):
                if after > before:
                    out.level_increases += 1
                elif after < before:
                    out.level_decreases += 1
        if self.records:
            out.duration = self.records[-1].time - self.records[0].time
        return out

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the trace to a JSON string."""
        payload = []
        for rec in self.records:
            d = asdict(rec)
            # JSON keys must be strings; tuples must become lists.
            d["direct"] = {str(k): list(v) for k, v in rec.direct.items()}
            d["indirect"] = {str(k): list(v) for k, v in rec.indirect.items()}
            d["failed_link"] = list(rec.failed_link) if rec.failed_link else None
            payload.append(d)
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "TraceRecorder":
        """Reconstruct a trace from :meth:`to_json` output."""
        recorder = cls()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SimulationError(f"malformed trace JSON: {exc}") from exc
        for d in payload:
            recorder.records.append(
                TraceRecord(
                    time=float(d["time"]),
                    kind=str(d["kind"]),
                    conn_id=d["conn_id"],
                    accepted=bool(d["accepted"]),
                    failed_link=tuple(d["failed_link"]) if d["failed_link"] else None,
                    direct={int(k): tuple(v) for k, v in d["direct"].items()},
                    indirect={int(k): tuple(v) for k, v in d["indirect"].items()},
                    activated=list(d["activated"]),
                    dropped=list(d["dropped"]),
                    lost_backup=list(d["lost_backup"]),
                    population=int(d["population"]),
                    average_bandwidth=float(d["average_bandwidth"]),
                )
            )
        return recorder


def verify_trace(recorder: TraceRecorder, num_levels: int) -> None:
    """Independent consistency check of a recorded trace.

    Verifies, without consulting the simulator:

    * timestamps are non-decreasing;
    * every level transition stays within ``[0, num_levels)``;
    * the population counter moves consistently with the event kinds
      (+1 on accepted arrival, -1 per termination/drop, else 0).

    Raises:
        SimulationError: on the first inconsistency found.
    """
    prev_time = float("-inf")
    prev_population: Optional[int] = None
    for index, rec in enumerate(recorder.records):
        if rec.time < prev_time - 1e-12:
            raise SimulationError(f"record {index}: time went backwards")
        prev_time = rec.time
        for cid, (before, after) in list(rec.direct.items()) + list(
            rec.indirect.items()
        ):
            for level in (before, after):
                if not 0 <= level < num_levels:
                    raise SimulationError(
                        f"record {index}: channel {cid} level {level} out of range"
                    )
        if prev_population is not None:
            delta = 0
            if rec.kind == EventKind.ARRIVAL.value and rec.accepted:
                delta += 1
            if rec.kind == EventKind.TERMINATION.value:
                delta -= 1
            delta -= len(rec.dropped)
            if rec.population != prev_population + delta:
                raise SimulationError(
                    f"record {index}: population {rec.population} inconsistent "
                    f"with previous {prev_population} and event {rec.kind}"
                )
        prev_population = rec.population
