"""Discrete-event simulation of DR-connections with elastic QoS."""

from __future__ import annotations

from repro.sim.engine import EventScheduler
from repro.sim.estimation import TransitionEstimator
from repro.sim.simulator import (
    SETUP_MODES,
    ElasticQoSSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.scenarios import bandwidth_tiers, utility_classes, video_mix
from repro.sim.stats import Measurement, MeasurementResult
from repro.sim.trace import TraceRecord, TraceRecorder, TraceSummary, verify_trace
from repro.sim.workload import QoSFactory, Workload, WorkloadConfig, constant_qos

__all__ = [
    "EventScheduler",
    "TransitionEstimator",
    "SETUP_MODES",
    "ElasticQoSSimulator",
    "SimulationConfig",
    "SimulationResult",
    "bandwidth_tiers",
    "utility_classes",
    "video_mix",
    "Measurement",
    "MeasurementResult",
    "TraceRecord",
    "TraceRecorder",
    "TraceSummary",
    "verify_trace",
    "QoSFactory",
    "Workload",
    "WorkloadConfig",
    "constant_qos",
]
