"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TopologyError(ReproError):
    """Raised for invalid topology construction or queries.

    Examples: adding a duplicate link, querying a node that does not
    exist, or asking a generator for an impossible configuration
    (e.g. more edges than node pairs).
    """


class QoSSpecError(ReproError):
    """Raised for invalid QoS specifications.

    Examples: ``b_min > b_max``, a non-positive increment, or a range
    that is not an integral multiple of the increment size.
    """


class RoutingError(ReproError):
    """Raised when route selection fails structurally.

    Note that *admission* failures (no route with enough bandwidth) are
    reported via return values, not exceptions, because they are an
    expected outcome of a loaded network.  ``RoutingError`` signals
    misuse, such as routing between unknown nodes.
    """


class AdmissionError(ReproError):
    """Raised when a reservation would violate a capacity invariant.

    The admission-control layer checks capacity before reserving; if a
    reservation call would overcommit a link, that is a programming
    error in the caller and is surfaced as ``AdmissionError``.
    """


class ReservationError(ReproError):
    """Raised for inconsistent reservation bookkeeping.

    Examples: releasing a reservation that does not exist, or
    registering the same channel twice on one link.
    """


class SimulationError(ReproError):
    """Raised for invalid simulator configuration or scheduling misuse.

    Examples: scheduling an event in the past, or running a simulator
    whose workload references nodes outside the topology.
    """


class FaultInjectionError(ReproError):
    """Raised for invalid fault-injection configuration or misuse.

    Examples: a correlated-burst injector with a non-positive burst
    size, a distance-kernel injector over a topology without node
    positions, or failing a node that has no alive incident links.
    """


class AuditError(FaultInjectionError):
    """Raised when a run-time invariant audit fails mid-simulation.

    Carries the tail of the event trace leading up to the violation so
    a failed campaign job can be post-mortemed without re-running it:

    Attributes:
        trace_tail: The most recent audit-trail entries (oldest first),
            each a compact per-event record.
        event_index: Index of the event after which the audit tripped.
    """

    def __init__(self, message: str, trace_tail=(), event_index=None) -> None:
        super().__init__(message)
        self.trace_tail = list(trace_tail)
        self.event_index = event_index

    def render_tail(self) -> str:
        """Human-readable rendering of the captured event tail."""
        if not self.trace_tail:
            return "(no trail captured)"
        return "\n".join(str(entry) for entry in self.trace_tail)


class MarkovModelError(ReproError):
    """Raised for malformed Markov-model inputs.

    Examples: non-square generator matrices, rows that do not sum to
    zero, probability matrices that are not row-stochastic, or a chain
    whose steady state does not exist (reducible chain).
    """


class EstimationError(ReproError):
    """Raised when parameter estimation from simulation traces fails.

    Example: asking for transition-probability estimates before any
    events were observed.
    """
