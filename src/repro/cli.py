"""Command-line interface: regenerate the paper's exhibits from a shell.

``python -m repro <command>`` exposes the experiment runners without
writing any Python:

* ``figure2`` / ``table1`` / ``figure3`` / ``figure4`` — regenerate one
  exhibit and print its rows/series;
* ``validate`` — run one simulation and print the full sim-vs-model
  validation report (average bandwidth, per-state π, TV distance);
* ``faultsim`` — run one fault-injection scenario (correlated bursts,
  node failures, Markov on/off links, backup-activation faults) with
  run-time invariant auditing and print the dependability counters;
* ``topology`` — generate a Waxman or transit-stub network and print
  its structural metrics.

All commands accept ``--seed`` and size options; ``--full`` switches to
the paper's exact scale.  Campaign commands also take ``--checkpoint``
/ ``--resume`` (persist finished jobs, skip them on re-run) and
``--retries`` / ``--job-timeout`` (crash-resilient execution).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.ascii_chart import chart_rows
from repro.analysis.experiments import (
    RunSettings,
    paper_connection_qos,
    run_figure2,
    run_figure3,
    run_figure4,
    run_table1,
    simulate_point,
)
from repro.analysis.report import render_table
from repro.analysis.chaining import expected_arrival_chaining, snapshot_chaining
from repro.analysis.validation import validate_against_model
from repro.faults import AuditPolicy, FaultConfig
from repro.parallel import CampaignCheckpoint, RetryPolicy, atomic_write_text
from repro.topology.metrics import (
    average_degree,
    average_shortest_path_hops,
    diameter,
    is_connected,
    leaf_nodes,
)
from repro.topology.transit_stub import TransitStubParams, transit_stub_network
from repro.topology.waxman import paper_random_network
from repro.units import PAPER_FAILURE_RATES, PAPER_LINK_CAPACITY


def _int_list(text: str) -> List[int]:
    """Parse a comma-separated integer list ('500,1000,2000')."""
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not an integer list: {text!r}") from exc


def _settings(args: argparse.Namespace) -> RunSettings:
    if args.full:
        return RunSettings(warmup_events=500, measure_events=3000, seed=args.seed)
    return RunSettings(warmup_events=200, measure_events=1000, seed=args.seed)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="RNG seed (default 7)")
    parser.add_argument(
        "--full", action="store_true", help="paper-exact scale (slower)"
    )
    parser.add_argument("--nodes", type=int, default=None, help="network size")
    parser.add_argument("--edges", type=int, default=None, help="target edge count")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for simulation campaigns (0 = all cores; "
        "default: REPRO_JOBS env or 1; results are identical at any value)",
    )
    parser.add_argument(
        "--chart", action="store_true", help="also render an ASCII chart"
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist finished simulation jobs under this directory",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse jobs already completed in --checkpoint instead of re-running",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run a failed/hung job up to this many times with the same seed",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget (pool mode); overdue jobs are retried",
    )


def _campaign_kwargs(args: argparse.Namespace, exhibit: str) -> dict:
    """Retry/checkpoint kwargs for one exhibit's campaign.

    Each exhibit checkpoints into its own subdirectory so ``report``
    (which runs several campaigns) never mixes their manifests.
    """
    checkpoint = None
    if args.checkpoint:
        checkpoint = CampaignCheckpoint(
            Path(args.checkpoint) / exhibit, resume=args.resume
        )
    return {
        "retry": RetryPolicy(max_retries=args.retries, timeout=args.job_timeout),
        "checkpoint": checkpoint,
    }


def _network_shape(args: argparse.Namespace) -> tuple[int, int]:
    nodes = args.nodes if args.nodes is not None else (100 if args.full else 60)
    edges = args.edges if args.edges is not None else (354 if args.full else 130)
    return nodes, edges


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_figure2(args: argparse.Namespace) -> int:
    nodes, edges = _network_shape(args)
    counts = args.connections or ([500, 1000, 2000, 3000, 4000, 5000] if args.full
                                  else [150, 300, 600, 1000, 1500])
    result = run_figure2(
        counts, nodes=nodes, edges=edges, settings=_settings(args), jobs=args.jobs,
        **_campaign_kwargs(args, "figure2"),
    )
    print(
        render_table(
            ["offered", "population", "sim Kb/s", "model Kb/s", "ideal Kb/s"],
            [
                [r.offered, r.population, r.simulated, r.analytic, r.ideal]
                for r in result.rows
            ],
            title=(
                f"Figure 2 ({result.nodes} nodes, {result.edges} edges, "
                f"avg hops {result.average_hops:.2f})"
            ),
        )
    )
    if args.chart:
        print()
        print(chart_rows(result.rows, "offered", ["simulated", "analytic"],
                         x_label="offered connections", y_label="avg bandwidth Kb/s"))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    nodes, edges = _network_shape(args)
    counts = args.connections or ([1000, 2000, 3000, 4000, 5000] if args.full
                                  else [300, 800, 1500])
    rows = run_table1(
        counts, nodes=nodes, edges=edges, settings=_settings(args), jobs=args.jobs,
        **_campaign_kwargs(args, "table1"),
    )
    print(
        render_table(
            ["offered", "Random Δ=100", "Random Δ=50", "Tier Δ=100", "Tier Δ=50"],
            [
                [r.offered, r.random_5_states, r.random_9_states,
                 r.tier_5_states, r.tier_9_states]
                for r in rows
            ],
            title="Table 1 — avg bandwidth (Kb/s) per increment size",
        )
    )
    return 0


def cmd_figure3(args: argparse.Namespace) -> int:
    node_counts = args.node_counts or ([100, 200, 300, 400, 500] if args.full
                                       else [40, 60, 80, 100])
    connections = args.connections_fixed or (3000 if args.full else 600)
    rows = run_figure3(
        node_counts, connections=connections, settings=_settings(args), jobs=args.jobs,
        **_campaign_kwargs(args, "figure3"),
    )
    print(
        render_table(
            ["nodes", "edges", "sim Kb/s", "model Kb/s"],
            [[r.nodes, r.edges, r.simulated, r.analytic] for r in rows],
            title=f"Figure 3 — avg bandwidth vs. network size ({connections} connections)",
        )
    )
    if args.chart:
        print()
        print(chart_rows(rows, "nodes", ["simulated", "analytic"],
                         x_label="network size (nodes)", y_label="avg bandwidth Kb/s"))
    return 0


def cmd_figure4(args: argparse.Namespace) -> int:
    nodes, edges = _network_shape(args)
    populations = args.populations or ([2000, 3000] if args.full else [400, 700])
    rates = list(PAPER_FAILURE_RATES)
    series = run_figure4(
        rates,
        populations=populations,
        nodes=nodes,
        edges=edges,
        settings=_settings(args),
        jobs=args.jobs,
        **_campaign_kwargs(args, "figure4"),
    )
    print(
        render_table(
            ["failure rate γ"] + [f"Avg{s.population}ft" for s in series],
            [
                [f"{gamma:.0e}"] + [s.analytic[i] for s in series]
                for i, gamma in enumerate(rates)
            ],
            title="Figure 4 — avg bandwidth (Kb/s) vs. link failure rate",
        )
    )
    if args.chart:
        import math

        chart_series = {
            f"pop {s.population}": [
                (math.log10(g), bw) for g, bw in zip(rates, s.analytic)
            ]
            for s in series
        }
        print()
        from repro.analysis.ascii_chart import ascii_chart

        print(ascii_chart(chart_series, x_label="log10(failure rate)",
                          y_label="avg bandwidth Kb/s"))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    nodes, edges = _network_shape(args)
    rng = np.random.default_rng(args.seed)
    net = paper_random_network(PAPER_LINK_CAPACITY, rng, n=nodes, target_edges=edges)
    qos = paper_connection_qos()
    result, _model = simulate_point(net, args.load, qos, _settings(args))
    report = validate_against_model(result, qos.performance)
    print(
        f"validation at {args.load} offered connections "
        f"({nodes} nodes / {net.num_links} links):"
    )
    print(report.render())
    return 0


def cmd_faultsim(args: argparse.Namespace) -> int:
    """One fault-injection scenario with run-time invariant auditing."""
    from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig
    from repro.sim.workload import WorkloadConfig

    nodes, edges = _network_shape(args)
    rng = np.random.default_rng(args.seed)
    net = paper_random_network(PAPER_LINK_CAPACITY, rng, n=nodes, target_edges=edges)
    faults = FaultConfig(
        mode=args.mode,
        burst_size=args.burst_size,
        burst_kernel=args.kernel,
        activation_fault_prob=args.activation_fault_prob,
        rate_spread=args.rate_spread,
        rate_seed=args.seed,
    )
    warmup = args.events // 5
    config = SimulationConfig(
        qos=paper_connection_qos(),
        offered_connections=args.load,
        workload=WorkloadConfig(
            link_failure_rate=args.failure_rate, repair_rate=args.repair_rate
        ),
        warmup_events=warmup,
        measure_events=args.events - warmup,
        faults=faults,
        audit=AuditPolicy(after_failure=True, every_n_events=args.audit_every),
    )
    result = ElasticQoSSimulator(net, config, seed=args.seed).run()
    stats = result.manager_stats
    print(
        f"fault scenario '{args.mode}' on {nodes} nodes / {net.num_links} links, "
        f"{result.events} events, t_end={result.end_time:.0f}:"
    )
    print(f"  avg bandwidth:         {result.average_bandwidth:.1f} Kb/s")
    print(f"  link failures/repairs: {stats.link_failures}/{stats.link_repairs}")
    print(f"  node failures:         {stats.node_failures}")
    print(f"  backups activated:     {stats.backups_activated}")
    print(f"  activation faults:     {stats.activation_faults}")
    print(f"  connections dropped:   {stats.connections_dropped}")
    print(f"  double-failure drops:  {stats.double_failure_drops}")
    print(f"  backups lost/rebuilt:  {stats.backups_lost}/{stats.backups_reestablished}")
    print(f"  invariant audits:      {result.audit_checks} (all passed)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate every exhibit and write one markdown report."""
    nodes, edges = _network_shape(args)
    settings = _settings(args)
    lines: List[str] = ["# Reproduction report", ""]
    lines.append(f"Scale: {'paper-exact' if args.full else 'quick'}; seed {args.seed}; "
                 f"{nodes}-node / ~{edges}-edge Waxman network.")
    lines.append("")

    counts = [500, 1000, 2000, 3000, 4000, 5000] if args.full else [150, 300, 600, 1000]
    fig2 = run_figure2(counts, nodes=nodes, edges=edges, settings=settings,
                       jobs=args.jobs, **_campaign_kwargs(args, "figure2"))
    lines.append("## Figure 2 — avg bandwidth vs. #connections")
    lines.append("```")
    lines.append(
        render_table(
            ["offered", "sim", "model", "ideal"],
            [[r.offered, r.simulated, r.analytic, r.ideal] for r in fig2.rows],
        )
    )
    lines.append("```")

    t1_counts = [1000, 3000, 5000] if args.full else [300, 800]
    table1 = run_table1(t1_counts, nodes=nodes, edges=edges, settings=settings,
                        jobs=args.jobs, **_campaign_kwargs(args, "table1"))
    lines.append("## Table 1 — increment sizes")
    lines.append("```")
    lines.append(
        render_table(
            ["offered", "Random Δ=100", "Random Δ=50", "Tier Δ=100", "Tier Δ=50"],
            [[r.offered, r.random_5_states, r.random_9_states,
              r.tier_5_states, r.tier_9_states] for r in table1],
        )
    )
    lines.append("```")

    f3_nodes = [100, 300, 500] if args.full else [40, 70, 100]
    f3_conns = 3000 if args.full else 400
    fig3 = run_figure3(f3_nodes, connections=f3_conns, settings=settings,
                       jobs=args.jobs, **_campaign_kwargs(args, "figure3"))
    lines.append(f"## Figure 3 — network size ({f3_conns} connections)")
    lines.append("```")
    lines.append(
        render_table(
            ["nodes", "edges", "sim", "model"],
            [[r.nodes, r.edges, r.simulated, r.analytic] for r in fig3],
        )
    )
    lines.append("```")

    pops = [2000, 3000] if args.full else [300, 500]
    fig4 = run_figure4(list(PAPER_FAILURE_RATES), populations=pops,
                       nodes=nodes, edges=edges, settings=settings, jobs=args.jobs,
                       **_campaign_kwargs(args, "figure4"))
    lines.append("## Figure 4 — failure-rate sweep (model)")
    lines.append("```")
    lines.append(
        render_table(
            ["γ"] + [f"pop {s.population}" for s in fig4],
            [[f"{g:.0e}"] + [s.analytic[i] for s in fig4]
             for i, g in enumerate(PAPER_FAILURE_RATES)],
        )
    )
    lines.append("```")

    text = "\n".join(lines)
    if args.output:
        atomic_write_text(Path(args.output), text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def cmd_chaining(args: argparse.Namespace) -> int:
    nodes, edges = _network_shape(args)
    rng = np.random.default_rng(args.seed)
    net = paper_random_network(PAPER_LINK_CAPACITY, rng, n=nodes, target_edges=edges)
    qos = paper_connection_qos()
    from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig

    config = SimulationConfig(
        qos=qos,
        offered_connections=args.load,
        warmup_events=0,
        measure_events=1,
    )
    sim = ElasticQoSSimulator(net, config, seed=args.seed)
    sim.establish_initial_population()
    snap = snapshot_chaining(sim.manager)
    mc_pf, mc_ps = expected_arrival_chaining(
        sim.manager, num_samples=args.samples, rng=np.random.default_rng(args.seed + 1)
    )
    print(f"chaining at {snap.num_channels} live channels "
          f"({nodes} nodes / {net.num_links} links):")
    print(f"  population pairwise:  Pf={snap.pf:.4f}  Ps={snap.ps:.4f}")
    print(f"  random-arrival view:  Pf={mc_pf:.4f}  Ps={mc_ps:.4f} "
          f"({args.samples} sampled routes)")
    print(f"  mean directly-chained peers per channel: "
          f"{snap.mean_direct_degree:.1f}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Determinism-aware static analysis (delegates to ``repro.lint``)."""
    from repro.lint.cli import main as lint_main

    forwarded: List[str] = list(args.paths)
    if args.select:
        forwarded += ["--select", args.select]
    if args.lint_format != "text":
        forwarded += ["--format", args.lint_format]
    if args.project:
        forwarded += ["--project"]
    if args.jobs != 1:
        forwarded += ["--jobs", str(args.jobs)]
    if args.stats:
        forwarded += ["--stats"]
    if args.list_rules:
        forwarded += ["--list-rules"]
    return lint_main(forwarded)


def _bench_workload(core: str, population: int, seed: int):
    """The ``bench_core_ops`` fixture workload, rebuilt CLI-side.

    Same topology, seed and population as
    ``benchmarks/bench_core_ops.loaded_manager`` so profile dumps line
    up with the pytest-benchmark numbers in BENCH_core_ops.json.
    """
    from repro.channels import make_manager

    rng = np.random.default_rng(seed)
    net = paper_random_network(PAPER_LINK_CAPACITY, rng, n=60, target_edges=130)
    manager = make_manager(net, core=core)
    qos = paper_connection_qos()
    nodes = np.array(net.nodes())
    pair_rng = np.random.default_rng(seed + 1)
    while manager.num_live < population:
        src, dst = pair_rng.choice(nodes, size=2, replace=False)
        manager.request_connection(int(src), int(dst), qos)
    return net, manager, qos, pair_rng, nodes


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the hot-path micro-benchmarks, optionally under cProfile."""
    import cProfile
    import io
    import pstats
    import time

    names = ("request", "failrep") if args.benchmark == "all" else (args.benchmark,)
    for name in names:
        net, manager, qos, pair_rng, nodes = _bench_workload(
            args.core, args.population, args.seed
        )
        links = net.link_ids()

        if name == "request":

            def body(events: int) -> None:
                for _ in range(events):
                    src, dst = pair_rng.choice(nodes, size=2, replace=False)
                    conn, _ = manager.request_connection(int(src), int(dst), qos)
                    if conn is not None:
                        manager.terminate_connection(conn.conn_id)

        else:

            def body(events: int) -> None:
                for i in range(events):
                    lid = links[i % len(links)]
                    manager.fail_link(lid)
                    manager.repair_link(lid)

        body(min(50, args.events))  # warm route cache and code paths
        if args.profile:
            profiler = cProfile.Profile()
            # Benchmark layer: wall-clock is the measurement, not sim time.
            t0 = time.perf_counter()  # repro-lint: disable=DET003
            profiler.enable()
            body(args.events)
            profiler.disable()
            elapsed = time.perf_counter() - t0  # repro-lint: disable=DET003
            buf = io.StringIO()
            pstats.Stats(profiler, stream=buf).strip_dirs().sort_stats(
                "cumulative"
            ).print_stats(args.top)
            header = (
                f"# repro bench --profile: {name} / {args.core} core\n"
                f"# {args.events} events, {elapsed * 1e6 / args.events:.1f} "
                "us/event -- cProfile's per-call overhead inflates "
                "call-heavy code; compare wall-clock via pytest-benchmark\n"
            )
            out = Path(args.out) / f"bench_{name}_{args.core}.prof.txt"
            atomic_write_text(out, header + buf.getvalue())
            print(header.rstrip())
            print(f"profile written to {out}")
        else:
            t0 = time.perf_counter()  # repro-lint: disable=DET003
            body(args.events)
            elapsed = time.perf_counter() - t0  # repro-lint: disable=DET003
            print(
                f"{name:8s} {args.core:6s} {args.events} events: "
                f"{elapsed * 1e6 / args.events:8.1f} us/event"
            )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on admission service until drained (SIGTERM/^C)."""
    import asyncio
    import json
    import os

    from repro.service import EngineConfig, parse_topology_arg
    from repro.service.chaos import (
        ChaosSchedule,
        DiskFaultPlan,
        chaos_point,
        install_chaos,
    )
    from repro.service.server import AdmissionService, ServiceConfig
    from repro.service.shedding import BackpressureConfig

    disk_faults = None
    if args.chaos_disk is not None:
        disk_faults = DiskFaultPlan.from_spec(args.chaos_disk)
    if args.chaos_crash is not None:
        install_chaos(ChaosSchedule.from_spec(args.chaos_crash))
    elif args.chaos_seed is not None:
        install_chaos(ChaosSchedule.from_seed(args.chaos_seed))

    config = ServiceConfig(
        topology=parse_topology_arg(args.topology),
        wal_path=args.wal,
        host=args.host,
        port=args.port,
        engine=EngineConfig(core=args.core, batch_max=args.batch_max),
        backpressure=BackpressureConfig(
            queue_limit=args.queue_limit,
            shed_watermark=args.shed_watermark,
            drain_rate_hint=args.drain_rate_hint,
        ),
        default_deadline_ms=args.deadline_ms,
        epoch_hold_s=args.epoch_hold_s,
        disk_faults=disk_faults,
    )

    async def run() -> None:
        service = AdmissionService(config)
        await service.start(install_signals=True)
        # Machine-readable startup line: tests and orchestrators read
        # the bound port (and recovery status) from here.
        print(
            json.dumps(
                {
                    "event": "listening",
                    "host": config.host,
                    "port": service.port,
                    "pid": os.getpid(),
                    "recovered": service.recovered,
                    "seq": service.engine.seq if service.engine else 0,
                }
            ),
            flush=True,
        )
        chaos_point("post-listen")
        await service.drained()
        assert service.engine is not None
        print(
            json.dumps(
                {
                    "event": "drained",
                    "seq": service.engine.seq,
                    "digest": service.engine.digest(),
                }
            ),
            flush=True,
        )

    asyncio.run(run())
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running service; optionally record latency percentiles."""
    import json

    from repro.service.loadgen import LoadgenConfig, run_loadgen_sync

    report = run_loadgen_sync(
        LoadgenConfig(
            host=args.host,
            port=args.port,
            total_requests=args.requests,
            concurrency=args.concurrency,
            seed=args.seed,
            deadline_ms=args.deadline_ms,
        )
    )
    client = report.latency_summary()
    service_latency = report.service_stats.get("latency", {})
    summary = {
        "sent": report.sent,
        "accepted": report.accepted,
        "rejected": report.rejected,
        "torn_down": report.torn_down,
        "failures_driven": report.failures_driven,
        "shed": report.shed,
        "retries": report.retries,
        "dropped_after_retries": report.dropped_after_retries,
        "expired": report.expired,
        "errors": report.errors,
        "disconnects": report.disconnects,
        "reconnects": report.reconnects,
        "aborted": report.aborted,
        "client_latency": client,
        "service_latency": service_latency,
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    if report.aborted:
        # The server died under us and reconnection was exhausted; the
        # partial stats above are still valid — say so and exit distinctly.
        print("ABORTED: server unreachable after bounded reconnect attempts")
        return 3
    failures = 0
    p50 = float(service_latency.get("p50_us", 0.0))
    p99 = float(service_latency.get("p99_us", 0.0))
    if args.slo_p50_us is not None and p50 > args.slo_p50_us:
        print(f"SLO VIOLATION: p50 {p50:.1f} us > {args.slo_p50_us:.1f} us")
        failures += 1
    if args.slo_p99_us is not None and p99 > args.slo_p99_us:
        print(f"SLO VIOLATION: p99 {p99:.1f} us > {args.slo_p99_us:.1f} us")
        failures += 1
    if report.errors:
        print(f"SLO VIOLATION: {report.errors} hard errors")
        failures += 1
    if args.record is not None:
        _record_service_latency(Path(args.bench_json), args.record, p50, p99,
                                int(report.sent))
        print(f"recorded run {args.record!r} into {args.bench_json}")
    return 1 if failures else 0


def _record_service_latency(
    output: Path, label: str, p50_us: float, p99_us: float, rounds: int
) -> None:
    """Merge a service-latency run into BENCH_core_ops.json.

    Uses the benchmarks' own merge helper (loaded by path — benchmarks/
    is not a package) under core "service", so ``bench_check``'s
    same-core lineage gate starts a fresh lineage instead of comparing
    decision latency against manager micro-benchmarks.
    """
    import importlib.util
    import os

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    spec = importlib.util.spec_from_file_location(
        "bench_to_json", bench_dir / "bench_to_json.py"
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    results = {
        "service_decision_p50": {"median_us": round(p50_us, 3), "rounds": rounds},
        "service_decision_p99": {"median_us": round(p99_us, 3), "rounds": rounds},
    }
    previous = os.environ.get("REPRO_BENCH_CORE")
    os.environ["REPRO_BENCH_CORE"] = "service"
    try:
        module.merge_run(output, label, results)
    finally:
        if previous is None:
            del os.environ["REPRO_BENCH_CORE"]
        else:
            os.environ["REPRO_BENCH_CORE"] = previous


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a service WAL offline; verify, cross-check, or export it."""
    import json

    from repro.service.replay import export_campaign, replay_log
    from repro.service.engine import EngineConfig, ServiceEngine
    from repro.service.wal import ReplayLogReader

    result = replay_log(args.log)
    summary = {
        "events": result.events_applied,
        "accepted_establishes": result.accepted,
        "clean_shutdown": result.clean_shutdown,
        "torn_tail": result.torn_tail,
        "digest": result.digest,
        "num_live": result.engine.manager.num_live,
    }
    if args.cross_check:
        reader = ReplayLogReader(args.log)
        other_core = "object" if reader.core == "array" else "array"
        twin = ServiceEngine(
            reader.topology,
            EngineConfig(core=other_core, manager_kwargs=reader.manager_kwargs),
        )
        for seq, request in reader.events():
            twin.seq = seq
            twin.apply_sequential(request)
        summary["cross_check_core"] = other_core
        summary["cross_check_match"] = twin.digest() == result.digest
    if args.expect_digest is not None:
        summary["digest_match"] = result.digest == args.expect_digest
    if args.export is not None:
        summary["export"] = export_campaign(args.log, args.export)
    print(json.dumps(summary, indent=2, sort_keys=True))
    if summary.get("cross_check_match") is False:
        print("FAIL: cores disagree on replayed state")
        return 1
    if summary.get("digest_match") is False:
        print("FAIL: replayed digest does not match --expect-digest")
        return 1
    return 0


def cmd_supervise(args: argparse.Namespace) -> int:
    """Run `repro serve` under a restart loop with digest cross-checks.

    Exit codes: 0 clean child exit, 2 restart budget exhausted, 3 crash
    loop detected, 4 recovery digest mismatch (the one that must never
    happen), 5 terminated by operator.
    """
    import json

    from repro.service.procs import serve_argv
    from repro.service.supervisor import ServeSupervisor, SupervisorPolicy

    extra = []
    if args.core != "array":
        extra += ["--core", args.core]
    if args.chaos_crash is not None:
        extra += ["--chaos-crash", args.chaos_crash]
    if args.chaos_seed is not None:
        extra += ["--chaos-seed", str(args.chaos_seed)]
    supervisor = ServeSupervisor(
        serve_argv(args.topology, args.wal, extra),
        args.wal,
        SupervisorPolicy(
            max_restarts=args.max_restarts,
            backoff_base_s=args.backoff_base_s,
            backoff_cap_s=args.backoff_cap_s,
            crash_loop_threshold=args.crash_loop_threshold,
            min_healthy_uptime_s=args.min_healthy_uptime_s,
            chaos_once=not args.chaos_every_restart,
        ),
    )
    report = supervisor.run()
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return {
        "clean-exit": 0,
        "restart-budget-exhausted": 2,
        "crash-loop": 3,
        "digest-mismatch": 4,
        "terminated": 5,
    }.get(report.outcome, 1)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos soak: crash-point trials and the disk-fault smoke."""
    import json
    import tempfile

    from repro.service.soak import run_disk_smoke, run_soak

    cores = [c.strip() for c in args.cores.split(",") if c.strip()]
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as fallback:
        workdir = args.workdir or fallback
        summary: dict = {}
        ok = True
        if not args.disk_smoke_only:
            report = run_soak(
                workdir,
                seed=args.seed,
                trials=args.trials,
                cores=cores,
                requests=args.requests,
                sweep=args.sweep,
                topology=args.topology,
            )
            summary["soak"] = report.to_dict()
            ok = ok and report.ok
        if args.disk_smoke or args.disk_smoke_only:
            smoke = run_disk_smoke(workdir, seed=args.seed, topology=args.topology)
            summary["disk_smoke"] = smoke
            ok = ok and smoke["ok"]
    summary["ok"] = ok
    print(json.dumps(summary, indent=2, sort_keys=True))
    if not ok:
        print("FAIL: durability invariant violated under chaos (see report)")
    return 0 if ok else 1


def cmd_topology(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.kind == "waxman":
        nodes, edges = _network_shape(args)
        net = paper_random_network(PAPER_LINK_CAPACITY, rng, n=nodes, target_edges=edges)
    else:
        net = transit_stub_network(TransitStubParams(), PAPER_LINK_CAPACITY, rng)
    print(f"{args.kind} network: {net.num_nodes} nodes, {net.num_links} links")
    print(f"  connected:      {is_connected(net)}")
    print(f"  average degree: {average_degree(net):.2f}")
    print(f"  diameter:       {diameter(net)}")
    print(f"  avg hops:       {average_shortest_path_hops(net):.2f}")
    print(f"  leaf nodes:     {len(leaf_nodes(net))}")
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Kim & Shin (DSN 2001): dependable real-time "
        "communication with elastic QoS.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure2", help="avg bandwidth vs. #connections")
    _add_common(p)
    p.add_argument("--connections", type=_int_list, default=None,
                   help="comma-separated offered counts")
    p.set_defaults(func=cmd_figure2)

    p = sub.add_parser("table1", help="avg bandwidth per increment size")
    _add_common(p)
    p.add_argument("--connections", type=_int_list, default=None)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("figure3", help="avg bandwidth vs. network size")
    _add_common(p)
    p.add_argument("--node-counts", type=_int_list, default=None)
    p.add_argument("--connections-fixed", type=int, default=None)
    p.set_defaults(func=cmd_figure3)

    p = sub.add_parser("figure4", help="avg bandwidth vs. failure rate")
    _add_common(p)
    p.add_argument("--populations", type=_int_list, default=None)
    p.set_defaults(func=cmd_figure4)

    p = sub.add_parser("validate", help="sim-vs-model validation report")
    _add_common(p)
    p.add_argument("--load", type=int, default=600, help="offered connections")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("faultsim", help="fault-injection scenario with auditing")
    _add_common(p)
    p.add_argument("--mode", choices=("single", "node", "burst", "markov"),
                   default="burst", help="failure process (default: burst)")
    p.add_argument("--burst-size", type=int, default=3,
                   help="links failed per burst event")
    p.add_argument("--kernel", choices=("shared-node", "distance"),
                   default="shared-node", help="burst-growth kernel")
    p.add_argument("--activation-fault-prob", type=float, default=0.05,
                   help="probability a backup activation itself fails")
    p.add_argument("--rate-spread", type=float, default=0.5,
                   help="lognormal σ of per-link rates (markov mode)")
    p.add_argument("--failure-rate", type=float, default=2e-4,
                   help="per-link failure rate γ")
    p.add_argument("--repair-rate", type=float, default=1.0,
                   help="per-failed-link repair rate")
    p.add_argument("--events", type=int, default=3000, help="total events")
    p.add_argument("--load", type=int, default=300, help="offered connections")
    p.add_argument("--audit-every", type=int, default=0,
                   help="also audit every N events (failures always audit)")
    p.set_defaults(func=cmd_faultsim)

    p = sub.add_parser("report", help="regenerate all exhibits into one report")
    _add_common(p)
    p.add_argument("--output", default=None, help="write markdown to this file")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("chaining", help="static Pf/Ps chaining analysis")
    _add_common(p)
    p.add_argument("--load", type=int, default=400, help="connections to establish")
    p.add_argument("--samples", type=int, default=100, help="Monte-Carlo routes")
    p.set_defaults(func=cmd_chaining)

    p = sub.add_parser(
        "bench", help="hot-path micro-benchmarks (optionally under cProfile)"
    )
    p.add_argument("--benchmark", choices=("request", "failrep", "all"),
                   default="all", help="which hot loop to run")
    p.add_argument("--core", choices=("array", "object"), default="array",
                   help="manager storage core")
    p.add_argument("--events", type=int, default=2000, help="events per loop")
    p.add_argument("--population", type=int, default=600,
                   help="pre-loaded connections")
    p.add_argument("--seed", type=int, default=11,
                   help="workload seed (11 matches bench_core_ops)")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile and dump top cumulative stats")
    p.add_argument("--top", type=int, default=40,
                   help="rows in the profile dump")
    p.add_argument("--out", default="benchmarks/results",
                   help="directory for *.prof.txt dumps")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("topology", help="generate and describe a topology")
    _add_common(p)
    p.add_argument("--kind", choices=("waxman", "transit-stub"), default="waxman")
    p.set_defaults(func=cmd_topology)

    p = sub.add_parser(
        "serve",
        help="always-on admission service (JSON-per-line socket protocol)",
    )
    p.add_argument("--topology", default="grid:nodes=4,cols=4,capacity=1000",
                   help="topology recipe: kind:key=value,... "
                   "(e.g. waxman:nodes=20,capacity=155,seed=7)")
    p.add_argument("--wal", default=None, metavar="PATH",
                   help="write-ahead replay log; an existing log triggers "
                   "recovery-by-replay on startup")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = OS-assigned; see startup line)")
    p.add_argument("--core", choices=("array", "object"), default="array")
    p.add_argument("--batch-max", type=int, default=64,
                   help="max requests per micro-epoch")
    p.add_argument("--queue-limit", type=int, default=1024,
                   help="bounded request queue size (backpressure)")
    p.add_argument("--shed-watermark", type=float, default=0.5,
                   help="queue occupancy where utility-aware shedding starts")
    p.add_argument("--drain-rate-hint", type=float, default=1000.0,
                   help="assumed service rate for retry_after hints (req/s)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="default per-request deadline budget")
    p.add_argument("--epoch-hold-s", type=float, default=0.0,
                   help="test hook: pause between WAL fsync and epoch apply")
    p.add_argument("--chaos-crash", default=None, metavar="SITE:HIT",
                   help="abort the process at a named crash site's N-th hit "
                   "(e.g. post-fsync:3); see repro.service.chaos.CRASH_SITES")
    p.add_argument("--chaos-seed", type=int, default=None,
                   help="derive a crash schedule from a seed instead")
    p.add_argument("--chaos-disk", default=None, metavar="KIND:RANGE,...",
                   help="inject WAL disk faults by call index "
                   "(e.g. fsync-eio:2-4,write-short:7)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "supervise",
        help="run `repro serve` under a restart loop (backoff, budget, "
        "crash-loop detection, recovery digest cross-check)",
    )
    p.add_argument("--topology", default="grid:nodes=4,cols=4,capacity=1000")
    p.add_argument("--wal", required=True, metavar="PATH",
                   help="WAL path (required: restarts are pointless without one)")
    p.add_argument("--core", choices=("array", "object"), default="array")
    p.add_argument("--max-restarts", type=int, default=8)
    p.add_argument("--backoff-base-s", type=float, default=0.2)
    p.add_argument("--backoff-cap-s", type=float, default=10.0)
    p.add_argument("--crash-loop-threshold", type=int, default=3,
                   help="consecutive short-lived children that count as a "
                   "crash loop")
    p.add_argument("--min-healthy-uptime-s", type=float, default=2.0)
    p.add_argument("--chaos-crash", default=None, metavar="SITE:HIT",
                   help="arm the child with this crash schedule")
    p.add_argument("--chaos-seed", type=int, default=None)
    p.add_argument("--chaos-every-restart", action="store_true",
                   help="re-arm chaos flags on every restart (default: first "
                   "incarnation only)")
    p.set_defaults(func=cmd_supervise)

    p = sub.add_parser(
        "chaos",
        help="seeded chaos soak: crash-point sweep + disk-fault degraded smoke",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trials", type=int, default=5,
                   help="number of seeded trials (ignored with --sweep)")
    p.add_argument("--sweep", action="store_true",
                   help="one trial per durability crash site per core")
    p.add_argument("--cores", default="array",
                   help="comma-separated manager cores (e.g. array,object)")
    p.add_argument("--requests", type=int, default=60,
                   help="scripted requests per trial")
    p.add_argument("--topology", default="grid:nodes=16,cols=4,capacity=1000")
    p.add_argument("--workdir", default=None,
                   help="keep WALs here (default: a temp dir)")
    p.add_argument("--disk-smoke", action="store_true",
                   help="also run the degraded-mode disk-fault smoke")
    p.add_argument("--disk-smoke-only", action="store_true",
                   help="run only the disk-fault smoke")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "loadgen", help="drive a running admission service with load"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--requests", type=int, default=1000)
    p.add_argument("--concurrency", type=int, default=8)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--deadline-ms", type=float, default=250.0)
    p.add_argument("--slo-p50-us", type=float, default=None,
                   help="fail (exit 1) if service p50 decision latency exceeds")
    p.add_argument("--slo-p99-us", type=float, default=None,
                   help="fail (exit 1) if service p99 decision latency exceeds")
    p.add_argument("--record", default=None, metavar="LABEL",
                   help="merge p50/p99 into BENCH_core_ops.json as this run label")
    p.add_argument("--bench-json", default="BENCH_core_ops.json",
                   help="benchmark artifact to record into")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "replay",
        help="replay a service WAL offline (verify / cross-check / export)",
    )
    p.add_argument("log", help="replay log written by `repro serve --wal`")
    p.add_argument("--cross-check", action="store_true",
                   help="also replay on the other manager core and compare digests")
    p.add_argument("--expect-digest", default=None,
                   help="fail unless the replayed digest equals this value")
    p.add_argument("--export", default=None, metavar="PATH",
                   help="write a normalized batch-campaign log (torn tails "
                   "dropped, sequence renumbered)")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "lint",
        help=(
            "determinism-aware static analysis (RNG/DET/ART/FLT rules; "
            "--project adds whole-program ASYNC/DUR/SOA rules)"
        ),
    )
    p.add_argument("paths", nargs="*", default=["src", "tests"],
                   help="files or directories to lint (default: src tests)")
    p.add_argument("--select", default=None,
                   help="comma-separated rule ids or families (e.g. RNG,DET002)")
    p.add_argument("--format", dest="lint_format",
                   choices=("text", "json", "sarif"),
                   default="text", help="report format")
    p.add_argument("--project", action="store_true",
                   help="also run the whole-program pass (call graph, "
                   "ASYNC/DUR/SOA rule families)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="parallel worker processes for the per-file stage")
    p.add_argument("--stats", action="store_true",
                   help="print per-phase/per-rule timing report to stderr")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
