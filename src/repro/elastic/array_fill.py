"""Vectorized water-filling over struct-of-arrays state.

Array-core twin of :mod:`repro.elastic.redistribute`: the same
increment-granular water-fill, rewritten as whole-wave sweeps over the
:class:`~repro.network.link_table.LinkTable` /
:class:`~repro.channels.conn_table.ConnectionTable` columns instead of
per-connection Python iteration.

Bitwise contract.  The object core's equal-share fill processes level
"waves" over cid-sorted buckets; each member, at its turn, is granted
one increment iff every link of its path still has spare ≥ its
threshold.  This module performs the *same grants in the same order*:

* a wave's members are gathered in ascending conn-id order, and their
  per-link spare is the exact left-to-right expression of the object
  core (``capacity - min - activated - extra``), evaluated elementwise;
* members failing the wave-entry spare test are dropped permanently —
  spares only shrink inside a round, so they would fail at their turn
  in the sequential fill too;
* the surviving set is granted **in one shot** only when a conservative
  contention analysis proves the sequential fill would have granted all
  of them: for every touched link, ``spare - total demand + Δ_min ≥
  thr_max`` (each member at its turn sees at least ``spare - (demand -
  its own Δ)``, which the condition bounds below by its threshold).
  The grant uses ``np.add.at`` — unbuffered, applied in array order —
  so each link's extra total accumulates member contributions in conn-id
  order, the object core's exact float trajectory;
* waves whose contention analysis fails fall back to sequential scalar
  processing of that whole wave (identical arithmetic, just slower) —
  correctness never depends on the fast path applying.

The one-shot/sequential equivalence argument is exact in real
arithmetic and in float64 on the paper's dyadic bandwidth grid
(multiples of 50 Kb/s, where every partial sum is exact); arbitrary
off-grid bandwidths fall back more often but stay bitwise equal because
the fallback *is* the sequential fill.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.elastic.policies import AdaptationPolicy, EqualShare
from repro.network.link_table import LinkTable

if TYPE_CHECKING:  # pragma: no cover - avoids an import cycle at runtime
    from repro.channels.conn_table import ConnectionTable

__all__ = ["redistribute_soa", "drop_to_minimum_soa", "is_maximal_soa"]

#: Shared placeholder for inactive members' path slices in the scalar
#: tail — never iterated, avoids allocating a list per dead slot.
_EMPTY_PATH: List[int] = []

#: Candidate count above which an equal-share fill skips the vectorized
#: machinery entirely and runs the scalar fill over Python mirrors.
#: Purely a constant-factor routing threshold (the scalar fill is the
#: exact sequential fill): large fields are post-reclaim refills whose
#: contention probe virtually always fails, so the ragged gathers and
#: demand build-up are wasted work there.
_TAIL_DIRECT_THRESHOLD = 32


def _gather(conns: ConnectionTable, hs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated dense link indices of ``hs``'s primary paths.

    Returns ``(flat indices, wave start offsets)``; member ``j`` owns
    ``flat[starts[j] : starts[j] + len_j]``.  Pure index arithmetic (the
    ``cumsum``/``repeat`` ragged-gather idiom) — no Python loop.
    """
    st = conns.prim_start[hs]
    ln = conns.prim_len[hs]
    ends = np.cumsum(ln)
    starts = ends - ln
    total = int(ends[-1])
    flat = np.arange(total, dtype=np.int64)
    flat += np.repeat(st - starts, ln)
    return conns.links_arena.data[flat], starts


def redistribute_soa(
    links: LinkTable,
    conns: ConnectionTable,
    handles: Union[np.ndarray, List[int]],
    policy: AdaptationPolicy,
    afters: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Water-fill spare capacity into the candidate handles.

    Args:
        links: Link columns (mutated: extras are granted).
        conns: Connection columns (mutated: levels rise).
        handles: Candidate handles, **sorted by conn id** — only these
            may rise (the caller collects every channel touching a link
            whose spare changed).  A plain list is accepted so hot
            callers can skip materializing an array the scalar fill
            would never use.
        policy: Adaptation policy ranking the competitors.
        afters: When given, filled with ``conn_id -> post-fill level``
            for every channel that rose (spares the caller a column
            gather per event).

    Returns:
        ``conn_id -> increments granted`` for every channel that rose.
    """
    n = len(handles)
    if not n:
        return {}
    granted: Dict[int, int] = {}
    if type(policy) is EqualShare:
        # The equal-share fill folds the saturation test (level <
        # max_level) into its candidate cull — no pre-filter pass.
        if n >= _TAIL_DIRECT_THRESHOLD:
            # Crowding shortcut: a large candidate field means the event
            # just reclaimed or released a saturated neighbourhood, and
            # the vectorized contention probe is all but certain to fail
            # there — skip every ragged gather and run the exact
            # sequential fill over the Python mirrors directly.
            hs_list = handles.tolist() if isinstance(handles, np.ndarray) else handles
            _python_fill(links, conns, hs_list, granted, afters)
        else:
            hs = (
                handles
                if isinstance(handles, np.ndarray)
                else np.fromiter(handles, np.int64, n)
            )
            _fill_equal_share_soa(links, conns, hs, granted, afters)
    else:
        hs = (
            handles
            if isinstance(handles, np.ndarray)
            else np.fromiter(handles, np.int64, n)
        )
        keep = conns.level[hs] < conns.max_level[hs]
        if not keep.any():
            return {}
        _fill_by_priority_soa(links, conns, hs[keep], policy, granted, afters)
    return granted


def _fill_equal_share_soa(
    links: LinkTable,
    conns: ConnectionTable,
    hs: np.ndarray,
    granted: Dict[int, int],
    afters: Optional[Dict[int, int]] = None,
) -> None:
    """Heap-free wave fill under the equal-share priority ``(level, cid)``.

    The candidate paths are gathered into one flat index array **once**;
    each wave then works on boolean-mask slices of that arena view.
    Candidates stay in cid order throughout, so wave membership masks
    never need sorting and every per-link accumulation is in cid order.
    """
    ncand = len(hs)
    flat_all, starts_all = _gather(conns, hs)
    lens = conns.prim_len[hs]
    thr_all = conns.threshold[hs]
    delta_all = conns.increment[hs]
    maxl = conns.max_level[hs]
    cur = conns.level[hs].copy()
    grants = np.zeros(ncand, dtype=np.int64)
    extra = links.primary_extra
    cap = links.capacity
    pmin = links.primary_min
    act = links.activated
    nlinks = len(links)
    # Upfront hopeless-candidate cull: extras are only ever *added*
    # during a fill, so path spares are monotonically non-increasing —
    # a member that cannot pass the spare test now never can.  Most
    # candidates in a saturated network die here, in a handful of
    # whole-array ops, before any wave machinery runs.  (Bitwise-safe:
    # a culled member would never have granted, so no float op moves.)
    # The materialized ``spare`` column is the same left-to-right
    # expression per cell, so one gather replaces four.
    links.refresh_aggregates()
    spare0 = links.spare[flat_all]
    active = (cur < maxl) & (np.minimum.reduceat(spare0, starts_all) >= thr_all)
    if not active.any():
        return
    # Global first-round contention probe.  If granting *every* active
    # member one increment keeps every touched link above the strictest
    # threshold, then so does any per-level subset of them (a subset
    # demands less and its ``thr_max``/``Δ_min`` bounds are no tighter),
    # and the vectorized wave loop below starts clean.  Otherwise the
    # sequential order matters from the first wave on — skip the wave
    # machinery entirely and run the exact member-by-member fill.
    act_idx = np.flatnonzero(active)
    occ_act = np.repeat(active, lens)
    flat_act = flat_all[occ_act]
    demand_rep0 = np.repeat(delta_all[act_idx], lens[act_idx])
    demand0 = np.zeros(nlinks, dtype=np.float64)
    np.add.at(demand0, flat_act, demand_rep0)
    probe = (
        spare0[occ_act] - demand0[flat_act] + delta_all[act_idx].min()
        < thr_all[act_idx].max()
    )
    if bool(probe.any()):
        _python_tail(
            links, conns, hs, flat_all, lens, thr_all, delta_all,
            maxl, cur, grants, active,
        )
    else:
        # The wave loop mutates ``primary_extra`` via unbuffered bulk
        # adds; flag the materialized aggregates stale up front
        # (spuriously when every wave dies at entry, which costs one
        # cheap recompute later).
        links.mark_aggregates_dirty()
        while True:
            if not active.any():
                break
            level = int(cur[active].min())
            sel = active & (cur == level)
            sel_idx = np.flatnonzero(sel)
            occ = np.repeat(sel, lens)
            flat = flat_all[occ]
            spare = cap[flat] - pmin[flat] - act[flat] - extra[flat]
            lens_sel = lens[sel_idx]
            seg_starts = np.cumsum(lens_sel) - lens_sel
            passed = np.minimum.reduceat(spare, seg_starts) >= thr_all[sel_idx]
            # Wave-entry failers leave the rotation permanently: spares
            # only shrink within a fill, so they would fail at their
            # turn in the sequential fill too.
            active[sel_idx[~passed]] = False
            if not passed.any():
                continue
            ok_idx = sel_idx[passed]
            if passed.all():
                flat_ok, spare_ok = flat, spare
            else:
                occ_ok = np.repeat(passed, lens_sel)
                flat_ok, spare_ok = flat[occ_ok], spare[occ_ok]
            delta_ok = delta_all[ok_idx]
            thr_max = thr_all[ok_idx].max()
            delta_min = delta_ok.min()
            demand_rep = np.repeat(delta_ok, lens[ok_idx])
            demand = np.zeros(nlinks, dtype=np.float64)
            np.add.at(demand, flat_ok, demand_rep)
            demand_at = demand[flat_ok]
            contended = spare_ok - demand_at + delta_min < thr_max
            if contended.any():
                # Contention: from here on the sequential order matters,
                # so finish the whole fill member-by-member in plain
                # Python — identical IEEE arithmetic, far cheaper per
                # scalar op than NumPy indexing.
                _python_tail(
                    links, conns, hs, flat_all, lens, thr_all, delta_all,
                    maxl, cur, grants, active,
                )
                break
            # Provably contention-free.  Grant k whole rounds at once:
            # k is bounded by every member's remaining headroom, by the
            # gap to the next populated level (so wave merge order — the
            # object core's grant order — is preserved), and by each
            # link's room for k rounds of the wave's demand (round j is
            # safe iff ``spare - j*demand + Δ_min ≥ thr_max``; worst at
            # j = k, and that bound also implies every member re-passes
            # the round-entry spare test).
            k = int((maxl[ok_idx] - level).min())
            ahead = active & (cur > level)
            if ahead.any():
                k = min(k, int(cur[ahead].min()) - level)
            if k > 1:
                room = spare_ok + delta_min - thr_max
                k = max(1, min(k, int((room / demand_at).min())))
                while k > 1 and bool(
                    (spare_ok - k * demand_at + delta_min < thr_max).any()
                ):
                    k -= 1  # float-division edge: back off conservatively
            # Each round is its own unbuffered add: per-link
            # accumulation order = cid order within the round, rounds in
            # sequence — the object core's exact float trajectory.
            hs_ok = hs[ok_idx]
            for _round in range(k):
                np.add.at(extra, flat_ok, demand_rep)
                conns.conn_extra[hs_ok] += delta_ok
            conns.level[hs_ok] += k
            grants[ok_idx] += k
            cur[ok_idx] += k
            active[ok_idx[cur[ok_idx] >= maxl[ok_idx]]] = False
    rose = np.flatnonzero(grants)
    if len(rose):
        hs_rose = hs[rose]
        cids = conns.conn_id[hs_rose].tolist()
        for cid, count in zip(cids, grants[rose].tolist()):
            granted[cid] = count
        if afters is not None:
            # ``conns.level`` is current on every exit path (the wave
            # loop scatters per round, the scalar tail writes back).
            for cid, lvl in zip(cids, conns.level[hs_rose].tolist()):
                afters[cid] = lvl


def _python_fill(
    links: LinkTable,
    conns: ConnectionTable,
    hs_list: List[int],
    granted: Dict[int, int],
    afters: Optional[Dict[int, int]],
) -> None:
    """Run a whole equal-share fill member-by-member over Python mirrors.

    The scalar twin of the wave machinery for crowded candidate fields:
    per-member thresholds, increments, level caps, and paths come from
    the :class:`ConnectionTable` Python mirrors (immutable per
    allocation, no gather needed); only the mutable state — levels,
    accumulated extras, link columns — is snapshotted per fill.  Probe
    and grant arithmetic is the object core's exact expression order
    over IEEE doubles, so the trajectory is bitwise identical.

    The upfront min-spare cull of the vectorized path is deliberately
    absent: a member it would cull simply fails its first in-bucket
    probe here (spares only shrink within a fill), granting nothing —
    same grants, same floats, no ragged reduction.
    """
    n = len(hs_list)
    hs_np = np.fromiter(hs_list, np.int64, n)
    cur_l = conns.level[hs_np].tolist()
    ce_l = conns.conn_extra[hs_np].tolist()
    maxl_py = conns.maxl_py
    thr_py = conns.thr_py
    delta_py = conns.delta_py
    path_py = conns.path_py
    spare_base = (links.capacity - links.primary_min - links.activated).tolist()
    extra_py = links.primary_extra.tolist()
    grants_l = [0] * n
    # Index j ascends in cid order, so appending risers in turn order
    # keeps each bucket cid-sorted, and merging two buckets is a plain
    # sorted-int merge.
    buckets: Dict[int, List[int]] = {}
    for j, h in enumerate(hs_list):
        if cur_l[j] < maxl_py[h]:
            buckets.setdefault(cur_l[j], []).append(j)
    while buckets:
        level = min(buckets)
        members = buckets.pop(level)
        risers: List[int] = []
        for j in members:
            h = hs_list[j]
            thr = thr_py[h]
            path = path_py[h]
            for li in path:
                if spare_base[li] - extra_py[li] < thr:
                    break
            else:
                delta = delta_py[h]
                for li in path:
                    extra_py[li] += delta
                ce_l[j] += delta
                grants_l[j] += 1
                cur_l[j] += 1
                if cur_l[j] < maxl_py[h]:
                    risers.append(j)
        if risers:
            waiting = buckets.get(level + 1)
            if waiting is None:
                buckets[level + 1] = risers
            else:
                # Two sorted runs: timsort's galloping merge is O(n)
                # and runs in C, cheaper than heapq.merge's generator.
                waiting += risers
                waiting.sort()
    changed = [j for j in range(n) if grants_l[j]]
    if not changed:
        return  # nothing granted: columns untouched, aggregates clean
    links.primary_extra[:] = extra_py
    links.mark_aggregates_dirty()
    hs_ch = hs_np[changed]
    conns.conn_extra[hs_ch] = [ce_l[j] for j in changed]
    conns.level[hs_ch] = [cur_l[j] for j in changed]
    cid_py = conns.cid_py
    if afters is None:
        for j in changed:
            granted[cid_py[hs_list[j]]] = grants_l[j]
    else:
        for j in changed:
            cid = cid_py[hs_list[j]]
            granted[cid] = grants_l[j]
            afters[cid] = cur_l[j]


def _python_tail(
    links: LinkTable,
    conns: ConnectionTable,
    hs: np.ndarray,
    flat_all: np.ndarray,
    lens: np.ndarray,
    thr_all: np.ndarray,
    delta_all: np.ndarray,
    maxl: np.ndarray,
    cur: np.ndarray,
    grants: np.ndarray,
    active: np.ndarray,
) -> None:
    """Finish a fill member-by-member once contention is detected.

    Sequential grant order now matters, and for wave sizes in the tens,
    plain-Python float arithmetic over list snapshots is an order of
    magnitude cheaper per operation than NumPy scalar indexing.  Python
    floats *are* IEEE doubles, and the ops below mirror the object
    core's expression order exactly, so the trajectory stays bitwise
    identical.  Only ``primary_extra`` mutates during a fill, so the
    other link columns are snapshotted once as the combined base
    ``capacity - primary_min - activated`` (same left-to-right
    association as the object core's spare expression).
    """
    n = len(hs)
    spare_base = (links.capacity - links.primary_min - links.activated).tolist()
    extra_py = links.primary_extra.tolist()
    flat_list = flat_all.tolist()
    ends = np.cumsum(lens)
    ends_l = ends.tolist()
    offs_l = (ends - lens).tolist()
    thr_l = thr_all.tolist()
    delta_l = delta_all.tolist()
    maxl_l = maxl.tolist()
    cur_l = cur.tolist()
    ce_l = conns.conn_extra[hs].tolist()
    grants0 = grants.tolist()
    grants_l = grants0.copy()
    # Index i ascends in cid order, so appending risers in turn order
    # keeps each bucket cid-sorted, and merging two buckets is a plain
    # sorted-int merge.  Per-member path slices are cut once and reused
    # across every level the member climbs.
    paths: List[List[int]] = [_EMPTY_PATH] * n
    buckets: Dict[int, List[int]] = {}
    for i, alive in enumerate(active.tolist()):
        if alive:
            paths[i] = flat_list[offs_l[i] : ends_l[i]]
            buckets.setdefault(cur_l[i], []).append(i)
    while buckets:
        level = min(buckets)
        members = buckets.pop(level)
        risers: List[int] = []
        for i in members:
            thr = thr_l[i]
            path = paths[i]
            for li in path:
                if spare_base[li] - extra_py[li] < thr:
                    break
            else:
                delta = delta_l[i]
                for li in path:
                    extra_py[li] += delta
                ce_l[i] += delta
                grants_l[i] += 1
                cur_l[i] += 1
                if cur_l[i] < maxl_l[i]:
                    risers.append(i)
        if risers:
            waiting = buckets.get(level + 1)
            if waiting is None:
                buckets[level + 1] = risers
            else:
                # Two sorted runs: timsort's galloping merge is O(n)
                # and runs in C, cheaper than heapq.merge's generator.
                waiting += risers
                waiting.sort()
    changed = [i for i in range(n) if grants_l[i] > grants0[i]]
    if changed:
        # Write-back only when the tail granted something: otherwise the
        # columns are untouched (any wave grants were scattered as they
        # happened) and the aggregates need no new staleness flag.
        links.primary_extra[:] = extra_py
        links.mark_aggregates_dirty()
        hs_ch = hs[changed]
        conns.conn_extra[hs_ch] = [ce_l[i] for i in changed]
        conns.level[hs_ch] = [cur_l[i] for i in changed]
        grants[changed] = [grants_l[i] for i in changed]


def _fill_by_priority_soa(
    links: LinkTable,
    conns: ConnectionTable,
    hs: np.ndarray,
    policy: AdaptationPolicy,
    granted: Dict[int, int],
    afters: Optional[Dict[int, int]] = None,
) -> None:
    """Generic heap fill for arbitrary priority rules (scalar columns).

    Pop order is a total order on ``(priority, cid)`` — identical to the
    object core's heap — and every grant applies the same float ops to
    the same columns, so the result is bitwise equal by construction.
    """
    priority = policy.priority
    links.mark_aggregates_dirty()
    extra = links.primary_extra
    cap = links.capacity
    pmin = links.primary_min
    act = links.activated
    level_col = conns.level
    heap: List[Tuple[Tuple, int, int, List[int]]] = []
    for h in hs.tolist():
        cid = int(conns.conn_id[h])
        qos = conns.qos[h]
        assert qos is not None
        path = conns.prim_slice(h).tolist()
        heap.append((priority(cid, int(level_col[h]), qos.performance), cid, h, path))
    heapq.heapify(heap)
    while heap:
        _, cid, h, path = heapq.heappop(heap)
        level = int(level_col[h])
        max_level = int(conns.max_level[h])
        if level >= max_level:
            continue
        threshold = conns.threshold[h]
        raisable = True
        for li in path:
            if cap[li] - pmin[li] - act[li] - extra[li] < threshold:
                raisable = False
                break
        if not raisable:
            continue
        delta = conns.increment[h]
        for li in path:
            extra[li] += delta
        conns.conn_extra[h] += delta
        level += 1
        level_col[h] = level
        granted[cid] = granted.get(cid, 0) + 1
        if afters is not None:
            afters[cid] = level
        if level < max_level:
            qos = conns.qos[h]
            assert qos is not None
            heapq.heappush(
                heap, (priority(cid, level, qos.performance), cid, h, path)
            )


def drop_to_minimum_soa(
    links: LinkTable, conns: ConnectionTable, h: int
) -> Tuple[int, np.ndarray]:
    """Reclaim handle ``h``'s extras on its whole path and zero its level.

    Returns ``(previous_level, dense indices where bandwidth was
    freed)`` — the redistribution frontier.  Extras are uniform along a
    path, so the frontier is all-or-nothing.
    """
    previous = int(conns.level[h])
    if previous == 0:
        return 0, _EMPTY_IDX
    freed = conns.conn_extra[h]
    path = conns.prim_slice(h)
    if freed:
        extra = links.primary_extra
        for li in path:
            extra[li] -= freed
        links.refresh_cells(path)
        conns.conn_extra[h] = 0.0
    conns.level[h] = 0
    if freed > 1e-6:  # EPSILON, see link_state
        return previous, path
    return previous, _EMPTY_IDX


_EMPTY_IDX = np.zeros(0, dtype=np.int64)


def is_maximal_soa(links: LinkTable, conns: ConnectionTable, hs: np.ndarray) -> bool:
    """Whether no handle in ``hs`` could still be raised (test oracle)."""
    spare = links.spare_for_extras()
    for h in hs.tolist():
        if conns.level[h] >= conns.max_level[h]:
            continue
        threshold = conns.threshold[h]
        if all(spare[li] >= threshold for li in conns.prim_slice(h)):
            return False
    return True
