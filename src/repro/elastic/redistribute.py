"""Localized water-filling redistribution of spare bandwidth.

Whenever link spare capacity changes (a connection arrived, terminated,
or a backup was activated), the extra resources must be re-distributed
to primary channels "according to their utility values" (paper §3.1).
This module implements that re-distribution as increment-granular
water-filling:

* a channel can be *raised* by one increment Δ only if **every** link of
  its primary path has at least Δ of spare extra-pool capacity;
* among raisable channels, the adaptation policy picks who goes next;
* the process repeats until no channel can be raised — the resulting
  allocation is maximal (property-tested).

Only channels whose paths touch links where spare capacity changed can
possibly be raised (spares elsewhere are unchanged, and raising a
channel only *consumes* capacity), so the engine examines just that
candidate set — this locality is what makes thousand-connection
simulations tractable in pure Python.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Set, Tuple

from repro.elastic.policies import AdaptationPolicy, EqualShare
from repro.network.link_state import EPSILON
from repro.network.state import NetworkState
from repro.qos.spec import ElasticQoS
from repro.topology.graph import LinkId


class ElasticParticipant(Protocol):
    """What the engine needs to know about a primary channel.

    ``link_state_memo`` is the redistribution fast path's per-record
    cache: ``(primary_links, LinkState objects, their primary_extra
    dicts, max_level, delta, threshold)``, validated by identity
    against ``primary_links`` (which is replaced wholesale on reroute).
    Bare participants may omit it — the engine falls back to resolving
    the path per event (``AttributeError`` duck-typing).
    """

    conn_id: int
    primary_links: List[LinkId]
    level: int
    link_state_memo: Optional[Tuple]

    @property
    def elastic_qos(self) -> ElasticQoS:  # pragma: no cover - protocol
        ...


def candidate_ids(
    channels_on_link: Mapping[LinkId, Set[int]], affected_links: Iterable[LinkId]
) -> Set[int]:
    """Channels whose primary touches any affected link.

    Skips empty per-link sets and unions the rest in one call instead of
    growing an accumulator link by link (this runs on every event).
    """
    get = channels_on_link.get
    groups = [ids for ids in map(get, affected_links) if ids]
    if not groups:
        return set()
    if len(groups) == 1:
        return set(groups[0])
    return set().union(*groups)


def redistribute(
    state: NetworkState,
    channels: Mapping[int, ElasticParticipant],
    candidates: Iterable[int],
    policy: AdaptationPolicy,
) -> Dict[int, int]:
    """Water-fill spare capacity into the candidate channels.

    Args:
        state: Network reservation state (mutated: extras are granted).
        channels: Registry of elastic participants; each candidate id
            must be present, hold a consistent ``level``, and have its
            minimum already reserved on every link of its path.
        candidates: Channels allowed to rise (those touching links whose
            spare changed).  Others provably cannot rise.
        policy: Adaptation policy ranking the competitors.

    Returns:
        ``conn_id -> increments granted`` for every channel that rose.
        Channel ``level`` attributes are updated in place.
    """
    # The fill loop visits each competitor many times (once per granted
    # increment), so everything loop-invariant is resolved exactly once
    # per candidate up front: the channel record, its QoS scalars
    # (memoized per contract object — populations share a handful of
    # contracts, and most candidates are already maxed, so the scalar
    # lookup must be cheap even for channels that never compete) and the
    # LinkState objects of its path (memoized on the record itself and
    # validated by identity against ``primary_links``, which is replaced
    # wholesale on reroute — resolving a path through ``state.link`` on
    # every event used to dominate the profile).  The per-increment body
    # then works on plain attributes: the spare test and the grant are
    # inlined equivalents of ``LinkState.spare_for_extras`` and
    # ``LinkState.grant_extra`` (the admission guard of ``grant_extra``
    # is exactly the spare test, so no check is lost), because property
    # and method dispatch on the hundred-thousand-call scale of a single
    # simulation dominates the fill's run time.
    resolve_link = state.link
    # Scalar cache keyed on the QoS contract *value* (ElasticQoS is a
    # frozen, hashable dataclass): populations share a handful of
    # contracts, so most candidates hit the cache, and unlike an
    # ``id()`` key the mapping is stable across processes and cannot
    # alias when a contract object is garbage-collected mid-campaign.
    qos_scalars: Dict[ElasticQoS, Tuple[int, float, float]] = {}
    granted: Dict[int, int] = defaultdict(int)
    equal_share = type(policy) is EqualShare
    buckets: Dict[int, List[Tuple]] = {}
    heap: List[Tuple] = []
    for cid in candidates:
        chan = channels[cid]
        try:
            memo = chan.link_state_memo
        except AttributeError:
            memo = None  # bare protocol participant: resolve per event
        if memo is not None and memo[0] is chan.primary_links:
            _lids, links, extras, max_level, delta, threshold = memo
        else:
            qos = chan.elastic_qos
            scalars = qos_scalars.get(qos)
            if scalars is None:
                delta = qos.increment
                scalars = (qos.max_level, delta, delta - EPSILON)
                qos_scalars[qos] = scalars
            max_level, delta, threshold = scalars
            lids = chan.primary_links
            links = [resolve_link(lid) for lid in lids]
            extras = [ls.primary_extra for ls in links]
            try:
                chan.link_state_memo = (lids, links, extras, max_level, delta, threshold)
            except AttributeError:
                pass
        level = chan.level
        if level >= max_level:
            continue
        if equal_share:
            entry = (cid, chan, max_level, delta, threshold, links, extras)
            bucket = buckets.get(level)
            if bucket is None:
                buckets[level] = [entry]
            else:
                bucket.append(entry)
        else:
            qos = chan.elastic_qos
            heap.append(
                (policy.priority(cid, level, qos), cid, chan, qos, max_level,
                 delta, threshold, links)
            )

    if equal_share:
        _fill_equal_share(buckets, granted)
    else:
        _fill_by_priority(policy, heap, granted)
    return dict(granted)


def _fill_equal_share(buckets: Dict[int, List[Tuple]], granted: Dict[int, int]) -> None:
    """Water-fill under the equal-share priority ``(level, conn_id)``.

    Equal share is the paper's own configuration and the default policy,
    so it gets a heap-free fast path: with priority ``(level, cid)`` the
    generic loop provably grants to all raisable channels of the lowest
    populated level in ascending ``cid`` order before touching the next
    level (a grant re-enters at ``level + 1``, *behind* every remaining
    same-level channel).  Processing whole level "waves" over cid-sorted
    buckets therefore performs the grants in exactly the generic order —
    and the resulting allocation is byte-identical — without paying a
    heap push/pop and a priority call per increment.

    ``buckets`` maps each starting level to its competitor entries
    ``(cid, chan, max_level, delta, threshold, links, extras)`` where
    ``extras`` holds each link's ``primary_extra`` dict (pre-resolved so
    a grant touches no attribute chains).
    """
    for bucket in buckets.values():
        # Entries compare by their leading (unique) cid, so sorting never
        # reaches the non-comparable payload fields.  Promotion preserves
        # cid order, so each bucket is sorted exactly once.
        bucket.sort()
    while buckets:
        level = min(buckets)
        next_level = level + 1
        promoted: List[Tuple] = []
        for entry in buckets.pop(level):
            cid, chan, max_level, delta, threshold, links, extras = entry
            for ls in links:
                if ls.capacity - ls._min_total - ls._activated_total - ls._extra_total < threshold:
                    # Spares only shrink during the fill, so this channel
                    # can never become raisable again in this round.
                    break
            else:
                for ls in links:
                    ls._extra_total += delta
                for pe in extras:
                    pe[cid] += delta
                chan.level = next_level
                granted[cid] += 1
                if next_level < max_level:
                    promoted.append(entry)
        if promoted:
            existing = buckets.get(next_level)
            if existing is None:
                buckets[next_level] = promoted
            else:
                # Two cid-sorted runs; timsort merges them in linear time
                # and keeps the bucket's sorted invariant.
                existing.extend(promoted)
                existing.sort()


def _fill_by_priority(
    policy: AdaptationPolicy, heap: List[Tuple], granted: Dict[int, int]
) -> None:
    """Generic water-fill for arbitrary priority rules.

    Heap entries keep the ``(priority, cid)`` prefix of the original
    implementation — ``cid`` is unique per entry, so the competitor
    payload riding behind it is never compared and the pop order is
    identical to a plain ``(priority, cid)`` heap.
    """
    priority = policy.priority
    heapq.heapify(heap)

    heappush = heapq.heappush
    heappop = heapq.heappop
    while heap:
        entry = heappop(heap)
        _, cid, chan, qos, max_level, delta, threshold, links = entry
        if chan.level >= max_level:
            continue
        for ls in links:
            if ls.capacity - ls._min_total - ls._activated_total - ls._extra_total < threshold:
                # Spares only shrink during the fill, so this channel can
                # never become raisable again in this round: drop it.
                break
        else:
            for ls in links:
                ls.primary_extra[cid] += delta
                ls._extra_total += delta
            level = chan.level + 1
            chan.level = level
            granted[cid] += 1
            if level < max_level:
                heappush(
                    heap,
                    (priority(cid, level, qos), cid, chan, qos, max_level, delta,
                     threshold, links),
                )


def is_maximal(
    state: NetworkState,
    channels: Mapping[int, ElasticParticipant],
    ids: Iterable[int],
) -> bool:
    """Whether no channel in ``ids`` could still be raised (test oracle)."""
    resolve_link = state.link
    for cid in ids:
        chan = channels[cid]
        qos = chan.elastic_qos
        if chan.level >= qos.max_level:
            continue
        threshold = qos.increment - EPSILON
        if all(
            resolve_link(lid).spare_for_extras >= threshold
            for lid in chan.primary_links
        ):
            return False
    return True


def drop_to_minimum(
    state: NetworkState,
    chan: ElasticParticipant,
) -> Tuple[int, List[LinkId]]:
    """Reclaim a channel's extras on its whole path and zero its level.

    Returns ``(previous_level, links where bandwidth was freed)``.
    The paper's reclamation rule is all-or-nothing: a directly-chained
    channel "release[s] their extra resources (beyond their required
    minimum)", i.e. drops to S0, before redistribution runs.
    """
    previous = chan.level
    if previous == 0:
        return 0, []
    affected = state.drop_extras_of(chan.conn_id, chan.primary_links)
    chan.level = 0
    return previous, affected
