"""Localized water-filling redistribution of spare bandwidth.

Whenever link spare capacity changes (a connection arrived, terminated,
or a backup was activated), the extra resources must be re-distributed
to primary channels "according to their utility values" (paper §3.1).
This module implements that re-distribution as increment-granular
water-filling:

* a channel can be *raised* by one increment Δ only if **every** link of
  its primary path has at least Δ of spare extra-pool capacity;
* among raisable channels, the adaptation policy picks who goes next;
* the process repeats until no channel can be raised — the resulting
  allocation is maximal (property-tested).

Only channels whose paths touch links where spare capacity changed can
possibly be raised (spares elsewhere are unchanged, and raising a
channel only *consumes* capacity), so the engine examines just that
candidate set — this locality is what makes thousand-connection
simulations tractable in pure Python.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Protocol, Sequence, Set, Tuple

from repro.elastic.policies import AdaptationPolicy
from repro.network.link_state import EPSILON
from repro.network.state import NetworkState
from repro.qos.spec import ElasticQoS
from repro.topology.graph import LinkId


class ElasticParticipant(Protocol):
    """What the engine needs to know about a primary channel."""

    conn_id: int
    primary_links: List[LinkId]
    level: int

    @property
    def elastic_qos(self) -> ElasticQoS:  # pragma: no cover - protocol
        ...


def candidate_ids(
    channels_on_link: Mapping[LinkId, Set[int]], affected_links: Iterable[LinkId]
) -> Set[int]:
    """Channels whose primary touches any affected link.

    Skips empty per-link sets and unions the rest in one call instead of
    growing an accumulator link by link (this runs on every event).
    """
    get = channels_on_link.get
    groups = [ids for ids in map(get, affected_links) if ids]
    if not groups:
        return set()
    if len(groups) == 1:
        return set(groups[0])
    return set().union(*groups)


def redistribute(
    state: NetworkState,
    channels: Mapping[int, ElasticParticipant],
    candidates: Iterable[int],
    policy: AdaptationPolicy,
) -> Dict[int, int]:
    """Water-fill spare capacity into the candidate channels.

    Args:
        state: Network reservation state (mutated: extras are granted).
        channels: Registry of elastic participants; each candidate id
            must be present, hold a consistent ``level``, and have its
            minimum already reserved on every link of its path.
        candidates: Channels allowed to rise (those touching links whose
            spare changed).  Others provably cannot rise.
        policy: Adaptation policy ranking the competitors.

    Returns:
        ``conn_id -> increments granted`` for every channel that rose.
        Channel ``level`` attributes are updated in place.
    """
    # The fill loop visits each competitor many times (once per granted
    # increment), so everything loop-invariant is resolved exactly once
    # per candidate up front: the channel record, its QoS scalars
    # (``max_level``/``increment`` are computed properties), and the
    # LinkState objects of its path (``state.link`` is a guarded dict
    # lookup that used to dominate the profile).
    resolve_link = state.link
    priority = policy.priority
    heap: List[Tuple[Tuple, int]] = []
    competitors: Dict[int, Tuple] = {}
    for cid in candidates:
        chan = channels[cid]
        qos = chan.elastic_qos
        max_level = qos.max_level
        if chan.level < max_level:
            delta = qos.increment
            links = [resolve_link(lid) for lid in chan.primary_links]
            competitors[cid] = (chan, qos, max_level, delta, delta - EPSILON, links)
            heap.append((priority(cid, chan.level, qos), cid))
    heapq.heapify(heap)

    heappush = heapq.heappush
    heappop = heapq.heappop
    granted: Dict[int, int] = defaultdict(int)
    while heap:
        _, cid = heappop(heap)
        chan, qos, max_level, delta, threshold, links = competitors[cid]
        if chan.level >= max_level:
            continue
        for ls in links:
            if ls.spare_for_extras < threshold:
                # Spares only shrink during the fill, so this channel can
                # never become raisable again in this round: drop it.
                break
        else:
            for ls in links:
                ls.grant_extra(cid, delta)
            chan.level += 1
            granted[cid] += 1
            if chan.level < max_level:
                heappush(heap, (priority(cid, chan.level, qos), cid))
    return dict(granted)


def is_maximal(
    state: NetworkState,
    channels: Mapping[int, ElasticParticipant],
    ids: Iterable[int],
) -> bool:
    """Whether no channel in ``ids`` could still be raised (test oracle)."""
    resolve_link = state.link
    for cid in ids:
        chan = channels[cid]
        qos = chan.elastic_qos
        if chan.level >= qos.max_level:
            continue
        threshold = qos.increment - EPSILON
        if all(
            resolve_link(lid).spare_for_extras >= threshold
            for lid in chan.primary_links
        ):
            return False
    return True


def drop_to_minimum(
    state: NetworkState,
    chan: ElasticParticipant,
) -> Tuple[int, List[LinkId]]:
    """Reclaim a channel's extras on its whole path and zero its level.

    Returns ``(previous_level, links where bandwidth was freed)``.
    The paper's reclamation rule is all-or-nothing: a directly-chained
    channel "release[s] their extra resources (beyond their required
    minimum)", i.e. drops to S0, before redistribution runs.
    """
    previous = chan.level
    if previous == 0:
        return 0, []
    affected = state.drop_extras_of(chan.conn_id, chan.primary_links)
    chan.level = 0
    return previous, affected
