"""Localized water-filling redistribution of spare bandwidth.

Whenever link spare capacity changes (a connection arrived, terminated,
or a backup was activated), the extra resources must be re-distributed
to primary channels "according to their utility values" (paper §3.1).
This module implements that re-distribution as increment-granular
water-filling:

* a channel can be *raised* by one increment Δ only if **every** link of
  its primary path has at least Δ of spare extra-pool capacity;
* among raisable channels, the adaptation policy picks who goes next;
* the process repeats until no channel can be raised — the resulting
  allocation is maximal (property-tested).

Only channels whose paths touch links where spare capacity changed can
possibly be raised (spares elsewhere are unchanged, and raising a
channel only *consumes* capacity), so the engine examines just that
candidate set — this locality is what makes thousand-connection
simulations tractable in pure Python.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Mapping, Protocol, Sequence, Set, Tuple

from repro.elastic.policies import AdaptationPolicy
from repro.network.link_state import EPSILON
from repro.network.state import NetworkState
from repro.qos.spec import ElasticQoS
from repro.topology.graph import LinkId


class ElasticParticipant(Protocol):
    """What the engine needs to know about a primary channel."""

    conn_id: int
    primary_links: List[LinkId]
    level: int

    @property
    def elastic_qos(self) -> ElasticQoS:  # pragma: no cover - protocol
        ...


def candidate_ids(
    channels_on_link: Mapping[LinkId, Set[int]], affected_links: Iterable[LinkId]
) -> Set[int]:
    """Channels whose primary touches any affected link."""
    out: Set[int] = set()
    for lid in affected_links:
        out.update(channels_on_link.get(lid, ()))
    return out


def redistribute(
    state: NetworkState,
    channels: Mapping[int, ElasticParticipant],
    candidates: Iterable[int],
    policy: AdaptationPolicy,
) -> Dict[int, int]:
    """Water-fill spare capacity into the candidate channels.

    Args:
        state: Network reservation state (mutated: extras are granted).
        channels: Registry of elastic participants; each candidate id
            must be present, hold a consistent ``level``, and have its
            minimum already reserved on every link of its path.
        candidates: Channels allowed to rise (those touching links whose
            spare changed).  Others provably cannot rise.
        policy: Adaptation policy ranking the competitors.

    Returns:
        ``conn_id -> increments granted`` for every channel that rose.
        Channel ``level`` attributes are updated in place.
    """
    heap: List[Tuple[Tuple, int]] = []
    for cid in candidates:
        chan = channels[cid]
        qos = chan.elastic_qos
        if chan.level < qos.max_level:
            heapq.heappush(heap, (policy.priority(cid, chan.level, qos), cid))

    granted: Dict[int, int] = {}
    while heap:
        _, cid = heapq.heappop(heap)
        chan = channels[cid]
        qos = chan.elastic_qos
        if chan.level >= qos.max_level:
            continue
        delta = qos.increment
        raisable = all(
            state.link(lid).spare_for_extras >= delta - EPSILON
            for lid in chan.primary_links
        )
        if not raisable:
            # Spares only shrink during the fill, so this channel can
            # never become raisable again in this round: drop it.
            continue
        for lid in chan.primary_links:
            state.link(lid).grant_extra(cid, delta)
        chan.level += 1
        granted[cid] = granted.get(cid, 0) + 1
        if chan.level < qos.max_level:
            heapq.heappush(heap, (policy.priority(cid, chan.level, qos), cid))
    return granted


def is_maximal(
    state: NetworkState,
    channels: Mapping[int, ElasticParticipant],
    ids: Iterable[int],
) -> bool:
    """Whether no channel in ``ids`` could still be raised (test oracle)."""
    for cid in ids:
        chan = channels[cid]
        qos = chan.elastic_qos
        if chan.level >= qos.max_level:
            continue
        if all(
            state.link(lid).spare_for_extras >= qos.increment - EPSILON
            for lid in chan.primary_links
        ):
            return False
    return True


def drop_to_minimum(
    state: NetworkState,
    chan: ElasticParticipant,
) -> Tuple[int, List[LinkId]]:
    """Reclaim a channel's extras on its whole path and zero its level.

    Returns ``(previous_level, links where bandwidth was freed)``.
    The paper's reclamation rule is all-or-nothing: a directly-chained
    channel "release[s] their extra resources (beyond their required
    minimum)", i.e. drops to S0, before redistribution runs.
    """
    previous = chan.level
    if previous == 0:
        return 0, []
    affected = state.drop_extras_of(chan.conn_id, chan.primary_links)
    chan.level = 0
    return previous, affected
