"""Elastic QoS run-time: adaptation policies and redistribution engine."""

from __future__ import annotations

from repro.elastic.policies import (
    AdaptationPolicy,
    EqualShare,
    MaxUtility,
    UtilityProportional,
    policy_by_name,
)
from repro.elastic.redistribute import (
    ElasticParticipant,
    candidate_ids,
    drop_to_minimum,
    is_maximal,
    redistribute,
)

__all__ = [
    "AdaptationPolicy",
    "EqualShare",
    "MaxUtility",
    "UtilityProportional",
    "policy_by_name",
    "ElasticParticipant",
    "candidate_ids",
    "drop_to_minimum",
    "is_maximal",
    "redistribute",
]
