"""Adaptation policies: how spare resources are divided among channels.

Section 2.2 of the paper describes two published adaptation schemes for
range QoS — the *max-utility* scheme (extra resources go to whichever
channel yields the most utility, which "allows a real-time channel to
monopolize all the extra resources") and the *coefficient* scheme
(extras are allocated proportionally to each channel's coefficient).
The paper's own experiments use equal utilities "for fair distribution
of resources".

All three are implemented as priority rules driving one increment-at-a-
time water-filling (:mod:`repro.elastic.redistribute`): the engine
repeatedly grants one increment Δ to the *lowest-priority-value*
eligible channel until no channel can be raised.  A policy therefore
only has to rank channels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

from repro.qos.spec import ElasticQoS


class AdaptationPolicy(ABC):
    """Ranks channels competing for the next bandwidth increment."""

    #: Short name used in benchmark tables and reports.
    name: str = "abstract"

    @abstractmethod
    def priority(self, conn_id: int, level: int, qos: ElasticQoS) -> Tuple:
        """Sort key of a channel; the smallest key receives the next Δ.

        Args:
            conn_id: Connection identifier (include it in the key to
                make every ranking total and deterministic).
            level: The channel's current elastic level (0 = minimum).
            qos: The channel's elastic QoS contract (utility lives here).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class EqualShare(AdaptationPolicy):
    """Round-robin fairness: always raise the lowest channel first.

    With equal utilities this reproduces the paper's "utilities of all
    connections are the same for fair distribution of resources" setup:
    the water level rises uniformly until links saturate.
    """

    name = "equal-share"

    def priority(self, conn_id: int, level: int, qos: ElasticQoS) -> Tuple:
        return (level, conn_id)


class UtilityProportional(AdaptationPolicy):
    """The coefficient scheme: extras proportional to channel utility.

    The channel whose *increments per unit of utility* is smallest is
    served next, so in the long run channel ``c`` holds extras roughly
    proportional to ``utility(c)``.  Channels with zero utility never
    receive extras.
    """

    name = "utility-proportional"

    def priority(self, conn_id: int, level: int, qos: ElasticQoS) -> Tuple:
        if qos.utility <= 0.0:
            return (float("inf"), -0.0, conn_id)
        return (level / qos.utility, -qos.utility, conn_id)


class MaxUtility(AdaptationPolicy):
    """The max-utility scheme: highest-utility channel takes everything.

    The highest-utility channel is raised repeatedly until it reaches
    its maximum or a bottleneck blocks it; only then does the next
    channel receive anything.  This is the monopolising behaviour the
    paper warns about, kept as a baseline for the policy ablation.
    """

    name = "max-utility"

    def priority(self, conn_id: int, level: int, qos: ElasticQoS) -> Tuple:
        return (-qos.utility, conn_id)


def policy_by_name(name: str) -> AdaptationPolicy:
    """Look up a policy instance by its short name (benchmark CLI glue)."""
    policies = {
        EqualShare.name: EqualShare,
        UtilityProportional.name: UtilityProportional,
        MaxUtility.name: MaxUtility,
    }
    try:
        return policies[name]()
    except KeyError:
        raise ValueError(
            f"unknown adaptation policy {name!r}; choose from {sorted(policies)}"
        ) from None
