"""Waxman random-graph generator (GT-ITM substitution).

The paper generates its "Random" networks with the GT-ITM package using
the Waxman model [16]: nodes are scattered uniformly in the unit square
and each node pair ``(u, v)`` becomes a link with probability

    P(u, v) = alpha * exp(-d(u, v) / (beta * L)),

where ``d`` is the Euclidean distance and ``L`` the maximum distance
between any two nodes.  The paper quotes "alpha = 0.33, beta = 0" for a
100-node, 354-edge graph; beta = 0 is degenerate in this convention (it
drives every probability to zero), so this module treats the *reported
edge count* as ground truth and provides :func:`calibrate_beta`, which
solves for the beta that makes the expected edge count match.  See
DESIGN.md, substitution 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.topology.graph import Network
from repro.topology.metrics import connected_components

#: Parameters reported by the paper for its 100-node random network.
PAPER_WAXMAN_ALPHA: float = 0.33
PAPER_WAXMAN_NODES: int = 100
PAPER_WAXMAN_EDGES: int = 354


@dataclass(frozen=True)
class WaxmanParams:
    """Waxman model parameters.

    Attributes:
        alpha: Maximum link probability (at distance zero).
        beta: Distance-decay scale as a fraction of the graph diameter;
            larger beta means long links are more likely.
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise TopologyError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.beta <= 0.0:
            raise TopologyError(
                f"beta must be positive, got {self.beta} "
                "(the paper's 'beta = 0' is degenerate; use calibrate_beta)"
            )


def _scatter(n: int, rng: np.random.Generator) -> np.ndarray:
    """Scatter ``n`` points uniformly in the unit square."""
    return rng.random((n, 2))


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix for a small point set."""
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def expected_edges(points: np.ndarray, params: WaxmanParams) -> float:
    """Expected number of edges of the Waxman model on fixed positions."""
    dist = _pairwise_distances(points)
    scale = dist.max()
    if scale <= 0.0:
        raise TopologyError("all points coincide; Waxman model undefined")
    prob = params.alpha * np.exp(-dist / (params.beta * scale))
    iu = np.triu_indices(len(points), k=1)
    return float(prob[iu].sum())


def calibrate_beta(
    points: np.ndarray,
    alpha: float,
    target_edges: float,
    tolerance: float = 0.5,
    max_iterations: int = 200,
) -> float:
    """Find the ``beta`` whose expected edge count matches ``target_edges``.

    The expected edge count is strictly increasing in beta, so a simple
    bisection converges.  Raises :class:`TopologyError` when the target
    is unreachable (above ``alpha * C(n, 2)`` or non-positive).
    """
    n = len(points)
    max_possible = alpha * n * (n - 1) / 2.0
    if not 0.0 < target_edges < max_possible:
        raise TopologyError(
            f"target edge count {target_edges} outside reachable range (0, {max_possible:.1f})"
        )
    lo, hi = 1e-6, 1.0
    while expected_edges(points, WaxmanParams(alpha, hi)) < target_edges:
        hi *= 2.0
        if hi > 1e6:
            raise TopologyError("calibrate_beta failed to bracket the target")
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        got = expected_edges(points, WaxmanParams(alpha, mid))
        if abs(got - target_edges) <= tolerance:
            return mid
        if got < target_edges:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _connect_components(net: Network, points: np.ndarray, capacity: float) -> int:
    """Join disconnected components with their shortest bridging edges.

    Returns the number of repair edges added.  Repair picks, for each
    non-primary component, the geometrically shortest absent edge to the
    growing connected body — a close analogue of GT-ITM's own
    connectivity fix-up.
    """
    added = 0
    while True:
        comps = connected_components(net)
        if len(comps) <= 1:
            return added
        body = set(comps[0])
        best: Optional[Tuple[float, int, int]] = None
        for comp in comps[1:]:
            for u in comp:
                for v in body:
                    d = float(np.hypot(*(points[u] - points[v])))
                    if best is None or d < best[0]:
                        best = (d, u, v)
        assert best is not None
        _, u, v = best
        net.add_link(u, v, capacity)
        added += 1


def waxman_network(
    n: int,
    params: WaxmanParams,
    capacity: float,
    rng: np.random.Generator,
    ensure_connected: bool = True,
) -> Network:
    """Generate a Waxman random network.

    Args:
        n: Number of nodes (placed uniformly in the unit square).
        params: Waxman ``(alpha, beta)`` parameters.
        capacity: Uniform link capacity (Kb/s); the paper uses 10 Mb/s
            for every link.
        rng: Source of randomness (seed it for reproducibility).
        ensure_connected: Add shortest bridging edges until connected,
            as GT-ITM does; disable to obtain the raw model.
    """
    if n < 2:
        raise TopologyError(f"need at least 2 nodes, got {n}")
    points = _scatter(n, rng)
    dist = _pairwise_distances(points)
    scale = dist.max()
    prob = params.alpha * np.exp(-dist / (params.beta * scale))
    draws = rng.random((n, n))
    net = Network()
    for node in range(n):
        net.add_node(node, (float(points[node, 0]), float(points[node, 1])))
    for u in range(n):
        for v in range(u + 1, n):
            if draws[u, v] < prob[u, v]:
                net.add_link(u, v, capacity)
    if ensure_connected:
        _connect_components(net, points, capacity)
    return net


def paper_random_network(
    capacity: float,
    rng: np.random.Generator,
    n: int = PAPER_WAXMAN_NODES,
    target_edges: Optional[int] = None,
    alpha: float = PAPER_WAXMAN_ALPHA,
) -> Network:
    """Generate a network with the paper's reported density.

    Scatters ``n`` nodes, calibrates beta so the *expected* edge count
    equals ``target_edges`` (default: the paper's 354 edges scaled by
    ``(n/100)^2`` so density is preserved when n varies, mimicking
    Figure 3 where the edge count "increases rapidly with the number of
    nodes" under fixed Waxman parameters), then samples the graph.
    """
    if target_edges is None:
        target_edges = round(PAPER_WAXMAN_EDGES * (n / PAPER_WAXMAN_NODES) ** 2)
    points = _scatter(n, rng)
    beta = calibrate_beta(points, alpha, float(target_edges))
    dist = _pairwise_distances(points)
    scale = dist.max()
    prob = alpha * np.exp(-dist / (beta * scale))
    draws = rng.random((n, n))
    net = Network()
    for node in range(n):
        net.add_node(node, (float(points[node, 0]), float(points[node, 1])))
    for u in range(n):
        for v in range(u + 1, n):
            if draws[u, v] < prob[u, v]:
                net.add_link(u, v, capacity)
    _connect_components(net, points, capacity)
    return net


def waxman_edge_probability(distance: float, scale: float, params: WaxmanParams) -> float:
    """The Waxman link probability for one pair (exposed for tests)."""
    if scale <= 0:
        raise TopologyError("distance scale must be positive")
    return params.alpha * math.exp(-distance / (params.beta * scale))
