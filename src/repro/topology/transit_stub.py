"""Transit-stub hierarchical topology generator (GT-ITM "Tier" model).

Table 1 of the paper compares its "Random" (Waxman) networks against a
"Tier" network: a GT-ITM transit-stub graph [14].  A transit-stub
topology has a small core of *transit domains* (wide-area backbones)
whose nodes each attach several *stub domains* (campus/edge networks).
Traffic between stubs must cross the transit core, so the core links
saturate quickly — which is exactly why the paper observes that "most
DR-connections are rejected due to the shortage of bandwidths in the
transit-stub network".

This module reimplements the model: transit domains are small connected
Waxman-ish random graphs, stub domains likewise, every stub domain hangs
off one transit node, and transit domains are joined into a connected
core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import TopologyError
from repro.topology.graph import Network


@dataclass(frozen=True)
class TransitStubParams:
    """Shape parameters of a transit-stub topology.

    The defaults produce roughly 100 nodes, matching the scale of the
    paper's Table 1 "Tier" network: 2 transit domains x 4 transit nodes,
    each transit node with 3 stub domains of 4 nodes each
    (2*4 + 2*4*3*4 = 104 nodes).

    Attributes:
        transit_domains: Number of transit (backbone) domains.
        transit_nodes_per_domain: Nodes in each transit domain.
        stub_domains_per_transit_node: Stub domains attached to each
            transit node.
        stub_nodes_per_domain: Nodes in each stub domain.
        intra_domain_edge_prob: Probability of each extra intra-domain
            edge beyond the connectivity-guaranteeing ring/tree.
    """

    transit_domains: int = 2
    transit_nodes_per_domain: int = 4
    stub_domains_per_transit_node: int = 3
    stub_nodes_per_domain: int = 4
    intra_domain_edge_prob: float = 0.3

    def __post_init__(self) -> None:
        if self.transit_domains < 1:
            raise TopologyError("need at least one transit domain")
        if self.transit_nodes_per_domain < 1:
            raise TopologyError("need at least one node per transit domain")
        if self.stub_domains_per_transit_node < 0:
            raise TopologyError("stub domain count cannot be negative")
        if self.stub_nodes_per_domain < 1:
            raise TopologyError("need at least one node per stub domain")
        if not 0.0 <= self.intra_domain_edge_prob <= 1.0:
            raise TopologyError("intra_domain_edge_prob must be a probability")

    @property
    def total_nodes(self) -> int:
        """Total node count implied by the shape parameters."""
        transit = self.transit_domains * self.transit_nodes_per_domain
        stubs = transit * self.stub_domains_per_transit_node * self.stub_nodes_per_domain
        return transit + stubs


def _add_connected_cluster(
    net: Network,
    members: List[int],
    capacity: float,
    extra_edge_prob: float,
    rng: np.random.Generator,
) -> None:
    """Wire ``members`` into a connected random cluster.

    A random spanning path guarantees connectivity; each remaining pair
    is added independently with ``extra_edge_prob``.
    """
    order = list(members)
    rng.shuffle(order)
    for a, b in zip(order, order[1:]):
        if not net.has_link(a, b):
            net.add_link(a, b, capacity)
    for i, a in enumerate(members):
        for b in members[i + 1 :]:
            if not net.has_link(a, b) and rng.random() < extra_edge_prob:
                net.add_link(a, b, capacity)


def transit_stub_network(
    params: TransitStubParams,
    capacity: float,
    rng: np.random.Generator,
    transit_capacity: float | None = None,
) -> Network:
    """Generate a transit-stub network.

    Args:
        params: Shape parameters (domain counts and sizes).
        capacity: Capacity of stub-domain and stub-to-transit links.
        rng: Randomness source.
        transit_capacity: Capacity of transit-core links; defaults to
            ``capacity`` because the paper assumes one uniform link
            bandwidth ("we assume that the bandwidth is the same for
            all links in a given network").

    Returns:
        A connected :class:`Network` whose node numbering places all
        transit nodes first, then stub nodes grouped by domain.
    """
    if transit_capacity is None:
        transit_capacity = capacity
    net = Network()
    next_node = 0

    transit_nodes_by_domain: List[List[int]] = []
    for _ in range(params.transit_domains):
        members = list(range(next_node, next_node + params.transit_nodes_per_domain))
        next_node += params.transit_nodes_per_domain
        for node in members:
            net.add_node(node)
        if len(members) > 1:
            _add_connected_cluster(
                net, members, transit_capacity, params.intra_domain_edge_prob, rng
            )
        transit_nodes_by_domain.append(members)

    # Join transit domains into a connected core (chain of inter-domain
    # links between random representative nodes, as GT-ITM does).
    for dom_a, dom_b in zip(transit_nodes_by_domain, transit_nodes_by_domain[1:]):
        a = int(rng.choice(dom_a))
        b = int(rng.choice(dom_b))
        if not net.has_link(a, b):
            net.add_link(a, b, transit_capacity)

    for domain in transit_nodes_by_domain:
        for transit_node in domain:
            for _ in range(params.stub_domains_per_transit_node):
                members = list(range(next_node, next_node + params.stub_nodes_per_domain))
                next_node += params.stub_nodes_per_domain
                for node in members:
                    net.add_node(node)
                if len(members) > 1:
                    _add_connected_cluster(
                        net, members, capacity, params.intra_domain_edge_prob, rng
                    )
                gateway = int(rng.choice(members))
                net.add_link(transit_node, gateway, capacity)

    return net


def transit_node_ids(params: TransitStubParams) -> List[int]:
    """Node identifiers of the transit core under the generator's numbering."""
    count = params.transit_domains * params.transit_nodes_per_domain
    return list(range(count))


def stub_node_ids(params: TransitStubParams) -> List[int]:
    """Node identifiers of all stub-domain nodes under the generator's numbering."""
    first = params.transit_domains * params.transit_nodes_per_domain
    return list(range(first, params.total_nodes))
