"""Flat (Erdős–Rényi-style) random topologies — GT-ITM's "pure random" flavour.

GT-ITM's flat random models [14] include, besides the Waxman method the
paper uses, a *pure random* method where every node pair is connected
with a fixed probability ``p`` independent of distance.  It is included
here for completeness of the GT-ITM substitution and as a structural
counterpoint in experiments: at equal edge counts, pure-random graphs
lack Waxman's geometric locality, which shifts chaining probabilities
(Pf, Ps) and therefore the Markov chain.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.topology.graph import Network
from repro.topology.metrics import connected_components


def pure_random_network(
    n: int,
    edge_probability: float,
    capacity: float,
    rng: np.random.Generator,
    ensure_connected: bool = True,
) -> Network:
    """G(n, p) random network with uniform link capacity.

    Args:
        n: Number of nodes.
        edge_probability: Independent probability of each node pair.
        capacity: Uniform link capacity (Kb/s).
        rng: Randomness source.
        ensure_connected: Join components with random bridging edges (a
            non-geometric analogue of the Waxman generator's repair).
    """
    if n < 2:
        raise TopologyError(f"need at least 2 nodes, got {n}")
    if not 0.0 <= edge_probability <= 1.0:
        raise TopologyError(f"edge probability must be in [0, 1], got {edge_probability}")
    net = Network()
    for node in range(n):
        net.add_node(node)
    draws = rng.random((n, n))
    for u in range(n):
        for v in range(u + 1, n):
            if draws[u, v] < edge_probability:
                net.add_link(u, v, capacity)
    if ensure_connected:
        _bridge_components(net, capacity, rng)
    return net


def pure_random_with_edge_target(
    n: int,
    target_edges: int,
    capacity: float,
    rng: np.random.Generator,
) -> Network:
    """G(n, p) with ``p`` chosen so the expected edge count hits a target."""
    pairs = n * (n - 1) / 2.0
    if not 0 < target_edges <= pairs:
        raise TopologyError(
            f"target edges {target_edges} outside (0, {pairs:.0f}] for n={n}"
        )
    return pure_random_network(n, target_edges / pairs, capacity, rng)


def _bridge_components(net: Network, capacity: float, rng: np.random.Generator) -> None:
    """Connect components with uniformly random absent bridging edges."""
    while True:
        comps = connected_components(net)
        if len(comps) <= 1:
            return
        body, other = comps[0], comps[1]
        u = int(rng.choice(body))
        v = int(rng.choice(other))
        if not net.has_link(u, v):
            net.add_link(u, v, capacity)
