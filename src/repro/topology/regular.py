"""Small regular topologies used by tests and examples.

None of these appear in the paper's evaluation (it deliberately targets
irregular Internet-like graphs), but rings, lines, grids and complete
graphs make the behaviour of routing, multiplexing and redistribution
easy to reason about in unit tests and tutorials.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.graph import Network


def line_network(n: int, capacity: float) -> Network:
    """A path of ``n`` nodes: 0 - 1 - ... - (n-1)."""
    if n < 2:
        raise TopologyError(f"line network needs at least 2 nodes, got {n}")
    net = Network()
    for u in range(n - 1):
        net.add_link(u, u + 1, capacity)
    return net


def ring_network(n: int, capacity: float) -> Network:
    """A cycle of ``n`` nodes.

    Handy for backup-channel tests: between any two ring nodes the
    clockwise and counter-clockwise arcs are link-disjoint.
    """
    if n < 3:
        raise TopologyError(f"ring network needs at least 3 nodes, got {n}")
    net = line_network(n, capacity)
    net.add_link(0, n - 1, capacity)
    return net


def complete_network(n: int, capacity: float) -> Network:
    """The complete graph on ``n`` nodes."""
    if n < 2:
        raise TopologyError(f"complete network needs at least 2 nodes, got {n}")
    net = Network()
    for u in range(n):
        for v in range(u + 1, n):
            net.add_link(u, v, capacity)
    return net


def grid_network(rows: int, cols: int, capacity: float) -> Network:
    """A ``rows x cols`` 4-neighbour mesh; node id is ``r * cols + c``."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(f"grid needs at least 2 nodes, got {rows}x{cols}")
    net = Network()
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            net.add_node(node, (float(c), float(r)))
            if c + 1 < cols:
                net.add_link(node, node + 1, capacity)
            if r + 1 < rows:
                net.add_link(node, node + cols, capacity)
    return net


def dumbbell_network(
    side: int, capacity: float, bottleneck_capacity: float | None = None
) -> Network:
    """Two stars joined by one bottleneck link.

    Nodes ``1..side`` hang off hub 0; nodes ``side+2..2*side+1`` hang off
    hub ``side+1``; the hubs share the single bottleneck link.  This is
    the canonical shape for exercising reclamation: every cross-traffic
    channel is forced through one shared link.
    """
    if side < 1:
        raise TopologyError(f"dumbbell side must be >= 1, got {side}")
    if bottleneck_capacity is None:
        bottleneck_capacity = capacity
    net = Network()
    hub_a, hub_b = 0, side + 1
    for leaf in range(1, side + 1):
        net.add_link(hub_a, leaf, capacity)
    for leaf in range(side + 2, 2 * side + 2):
        net.add_link(hub_b, leaf, capacity)
    net.add_link(hub_a, hub_b, bottleneck_capacity)
    return net
