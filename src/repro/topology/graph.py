"""Immutable-ish network topology substrate.

A :class:`Network` is an undirected multigraph-free graph of numbered
nodes connected by capacity-labelled links.  Topology objects hold only
*structure* (who is connected to whom, with what raw capacity and what
geometric length); all run-time resource state (reservations, failures)
lives in :mod:`repro.network`, keyed by :data:`LinkId`.  This separation
lets one topology be shared by many simulations.

Links are undirected: the paper models a link's bandwidth as a single
pool shared by the channels traversing it in either direction, and all
its experiments quote one capacity per link.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TopologyError

#: Canonical identifier of an undirected link: ``(min(u, v), max(u, v))``.
LinkId = Tuple[int, int]

#: One compact adjacency row: ``(neighbor, link_id, link)`` triples of a
#: node, sorted by neighbor.  Routing hot loops iterate these instead of
#: calling ``neighbors()`` (which sorts) plus ``get_link()`` (a dict
#: lookup) per edge.
AdjacencyRow = List[Tuple[int, LinkId, "Link"]]


def link_id(u: int, v: int) -> LinkId:
    """Return the canonical identifier for the undirected link ``{u, v}``."""
    if u == v:
        raise TopologyError(f"self-loop {u}-{v} is not a valid link")
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class Link:
    """A single undirected link.

    Attributes:
        u: Lower-numbered endpoint.
        v: Higher-numbered endpoint.
        capacity: Raw bandwidth capacity (Kb/s).
        length: Geometric length (used by distance-aware generators and
            as an optional routing weight); defaults to 1.0.
    """

    u: int
    v: int
    capacity: float
    length: float = 1.0

    def __post_init__(self) -> None:
        if self.u >= self.v:
            raise TopologyError(f"link endpoints must satisfy u < v, got ({self.u}, {self.v})")
        if self.capacity <= 0:
            raise TopologyError(
                f"link ({self.u}, {self.v}) has non-positive capacity {self.capacity}"
            )
        if self.length <= 0:
            raise TopologyError(f"link ({self.u}, {self.v}) has non-positive length {self.length}")

    @property
    def id(self) -> LinkId:
        """Canonical identifier of this link."""
        return (self.u, self.v)

    def other(self, node: int) -> int:
        """Return the endpoint of this link that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise TopologyError(f"node {node} is not an endpoint of link {self.id}")


@dataclass
class Network:
    """An undirected network of nodes and capacity-labelled links.

    Nodes are integers.  Optional 2-D positions support the geometric
    generators (Waxman) and are carried along for reproducibility, but
    nothing else in the library depends on them.
    """

    _adj: Dict[int, Dict[int, Link]] = field(default_factory=dict)
    _links: Dict[LinkId, Link] = field(default_factory=dict)
    _positions: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    #: Bumped on every structural mutation; versions the adjacency cache.
    _version: int = field(default=0, repr=False)
    _rows_cache: Optional[Dict[int, AdjacencyRow]] = field(default=None, repr=False)
    _rows_version: int = field(default=-1, repr=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: int, position: Optional[Tuple[float, float]] = None) -> None:
        """Add ``node``; re-adding an existing node only updates its position."""
        if node not in self._adj:
            self._adj[node] = {}
            self._version += 1
        if position is not None:
            self._positions[node] = (float(position[0]), float(position[1]))

    def add_link(self, u: int, v: int, capacity: float, length: Optional[float] = None) -> Link:
        """Create the undirected link ``{u, v}`` and return it.

        Endpoints are added implicitly.  ``length`` defaults to the
        Euclidean distance between the endpoint positions when both are
        known, else 1.0.

        Raises:
            TopologyError: if the link already exists or is a self-loop.
        """
        lid = link_id(u, v)
        if lid in self._links:
            raise TopologyError(f"link {lid} already exists")
        self.add_node(u)
        self.add_node(v)
        if length is None:
            length = self.distance(u, v) if (u in self._positions and v in self._positions) else 1.0
            if length <= 0.0:
                length = 1e-9  # coincident points: keep a valid positive length
        link = Link(lid[0], lid[1], float(capacity), float(length))
        self._links[lid] = link
        self._adj[u][v] = link
        self._adj[v][u] = link
        self._version += 1
        return link

    def remove_link(self, u: int, v: int) -> None:
        """Remove the undirected link ``{u, v}``.

        Raises:
            TopologyError: if the link does not exist.
        """
        lid = link_id(u, v)
        if lid not in self._links:
            raise TopologyError(f"link {lid} does not exist")
        del self._links[lid]
        del self._adj[u][v]
        del self._adj[v][u]
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def num_links(self) -> int:
        """Number of undirected links."""
        return len(self._links)

    def nodes(self) -> List[int]:
        """All node identifiers, sorted."""
        return sorted(self._adj)

    def links(self) -> List[Link]:
        """All links, sorted by canonical identifier."""
        return [self._links[lid] for lid in sorted(self._links)]

    def link_ids(self) -> List[LinkId]:
        """All canonical link identifiers, sorted."""
        return sorted(self._links)

    def has_node(self, node: int) -> bool:
        """Whether ``node`` exists."""
        return node in self._adj

    def has_link(self, u: int, v: int) -> bool:
        """Whether the undirected link ``{u, v}`` exists."""
        return link_id(u, v) in self._links

    def get_link(self, u: int, v: int) -> Link:
        """Return the link ``{u, v}``.

        Raises:
            TopologyError: if it does not exist.
        """
        lid = link_id(u, v)
        try:
            return self._links[lid]
        except KeyError:
            raise TopologyError(f"link {lid} does not exist") from None

    def neighbors(self, node: int) -> List[int]:
        """Neighbours of ``node``, sorted.

        Raises:
            TopologyError: if ``node`` does not exist.
        """
        try:
            return sorted(self._adj[node])
        except KeyError:
            raise TopologyError(f"node {node} does not exist") from None

    @property
    def version(self) -> int:
        """Structural mutation counter (add/remove of nodes and links)."""
        return self._version

    def adjacency_rows(self) -> Dict[int, AdjacencyRow]:
        """Compact adjacency: node -> ``[(neighbor, link_id, link), ...]``.

        Rows are sorted by neighbor, matching :meth:`neighbors`, so any
        search iterating them visits edges in exactly the order the
        per-edge ``neighbors()``/``get_link()`` API would.  The mapping
        is rebuilt lazily after structural mutations and shared by all
        callers; treat it as read-only.
        """
        if self._rows_cache is None or self._rows_version != self._version:
            self._rows_cache = {
                node: [(nbr, nbrs[nbr].id, nbrs[nbr]) for nbr in sorted(nbrs)]
                for node, nbrs in self._adj.items()
            }
            self._rows_version = self._version
        return self._rows_cache

    def incident_links(self, node: int) -> List[Link]:
        """Links incident to ``node``, sorted by the opposite endpoint."""
        if node not in self._adj:
            raise TopologyError(f"node {node} does not exist")
        return [self._adj[node][nbr] for nbr in sorted(self._adj[node])]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        if node not in self._adj:
            raise TopologyError(f"node {node} does not exist")
        return len(self._adj[node])

    def position(self, node: int) -> Optional[Tuple[float, float]]:
        """Position of ``node`` or ``None`` when the topology is non-geometric."""
        return self._positions.get(node)

    def distance(self, u: int, v: int) -> float:
        """Euclidean distance between two positioned nodes.

        Raises:
            TopologyError: if either node has no position.
        """
        try:
            xu, yu = self._positions[u]
            xv, yv = self._positions[v]
        except KeyError as exc:
            raise TopologyError(f"node {exc.args[0]} has no position") from None
        return math.hypot(xu - xv, yu - yv)

    # ------------------------------------------------------------------
    # path helpers
    # ------------------------------------------------------------------
    def path_links(self, path: Sequence[int]) -> List[LinkId]:
        """Translate a node path into its canonical link identifiers.

        Raises:
            TopologyError: if any hop is not an existing link.
        """
        out: List[LinkId] = []
        for a, b in zip(path, path[1:]):
            lid = link_id(a, b)
            if lid not in self._links:
                raise TopologyError(f"path uses non-existent link {lid}")
            out.append(lid)
        return out

    def is_path(self, path: Sequence[int]) -> bool:
        """Whether ``path`` is a valid simple node path in this network."""
        if len(path) < 2 or len(set(path)) != len(path):
            return False
        try:
            self.path_links(path)
        except TopologyError:
            return False
        return True

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self) -> "Network":
        """Structural copy sharing the (immutable) :class:`Link` objects."""
        other = Network()
        other._adj = {n: dict(nbrs) for n, nbrs in self._adj.items()}
        other._links = dict(self._links)
        other._positions = dict(self._positions)
        return other

    def __contains__(self, node: object) -> bool:
        return node in self._adj

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Network(nodes={self.num_nodes}, links={self.num_links})"


def network_from_edges(
    edges: Iterable[Tuple[int, int]],
    capacity: float,
    positions: Optional[Dict[int, Tuple[float, float]]] = None,
) -> Network:
    """Build a uniform-capacity :class:`Network` from an edge list."""
    net = Network()
    if positions:
        for node, pos in positions.items():
            net.add_node(node, pos)
    for u, v in edges:
        net.add_link(u, v, capacity)
    return net


def iter_adjacent(net: Network, node: int) -> Iterator[Tuple[int, Link]]:
    """Iterate ``(neighbor, link)`` pairs of ``node`` in sorted order."""
    for nbr in net.neighbors(node):
        yield nbr, net.get_link(node, nbr)
