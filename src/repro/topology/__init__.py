"""Network topology substrate: graph type, generators and metrics.

This package replaces the paper's use of the GT-ITM topology package:
:func:`waxman_network` / :func:`paper_random_network` generate the
"Random" graphs and :func:`transit_stub_network` the "Tier" graphs of
Table 1.  See DESIGN.md substitution 1 for the beta-calibration story.
"""

from __future__ import annotations

from repro.topology.graph import Link, LinkId, Network, link_id, network_from_edges
from repro.topology.metrics import (
    average_degree,
    average_shortest_path_hops,
    bfs_distances,
    connected_components,
    degree_histogram,
    diameter,
    eccentricity,
    is_connected,
    leaf_nodes,
)
from repro.topology.random_flat import (
    pure_random_network,
    pure_random_with_edge_target,
)
from repro.topology.regular import (
    complete_network,
    dumbbell_network,
    grid_network,
    line_network,
    ring_network,
)
from repro.topology.transit_stub import (
    TransitStubParams,
    stub_node_ids,
    transit_node_ids,
    transit_stub_network,
)
from repro.topology.waxman import (
    PAPER_WAXMAN_ALPHA,
    PAPER_WAXMAN_EDGES,
    PAPER_WAXMAN_NODES,
    WaxmanParams,
    calibrate_beta,
    expected_edges,
    paper_random_network,
    waxman_edge_probability,
    waxman_network,
)

__all__ = [
    "Link",
    "LinkId",
    "Network",
    "link_id",
    "network_from_edges",
    "average_degree",
    "average_shortest_path_hops",
    "bfs_distances",
    "connected_components",
    "degree_histogram",
    "diameter",
    "eccentricity",
    "is_connected",
    "leaf_nodes",
    "pure_random_network",
    "pure_random_with_edge_target",
    "complete_network",
    "dumbbell_network",
    "grid_network",
    "line_network",
    "ring_network",
    "TransitStubParams",
    "stub_node_ids",
    "transit_node_ids",
    "transit_stub_network",
    "PAPER_WAXMAN_ALPHA",
    "PAPER_WAXMAN_EDGES",
    "PAPER_WAXMAN_NODES",
    "WaxmanParams",
    "calibrate_beta",
    "expected_edges",
    "paper_random_network",
    "waxman_edge_probability",
    "waxman_network",
]
