"""Structural metrics over :class:`~repro.topology.graph.Network`.

These are the quantities the paper reports about its generated
topologies — node/edge counts, average degree ("average degree of
connection 3.48"), and diameter ("average diameter 8") — plus the
connectivity predicates the generators need.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.errors import TopologyError
from repro.topology.graph import Network


def bfs_distances(net: Network, source: int) -> Dict[int, int]:
    """Hop distances from ``source`` to every reachable node (BFS)."""
    if not net.has_node(source):
        raise TopologyError(f"node {source} does not exist")
    dist = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nbr in net.neighbors(node):
            if nbr not in dist:
                dist[nbr] = dist[node] + 1
                queue.append(nbr)
    return dist


def connected_components(net: Network) -> List[List[int]]:
    """Connected components, each sorted, ordered by smallest member."""
    seen: set[int] = set()
    components: List[List[int]] = []
    for node in net.nodes():
        if node in seen:
            continue
        comp = sorted(bfs_distances(net, node))
        seen.update(comp)
        components.append(comp)
    components.sort(key=lambda c: c[0])
    return components


def is_connected(net: Network) -> bool:
    """Whether the network is connected (vacuously true when empty)."""
    if net.num_nodes == 0:
        return True
    any_node = net.nodes()[0]
    return len(bfs_distances(net, any_node)) == net.num_nodes


def average_degree(net: Network) -> float:
    """Mean node degree, ``2·|E| / |V|``."""
    if net.num_nodes == 0:
        raise TopologyError("average degree of an empty network is undefined")
    return 2.0 * net.num_links / net.num_nodes


def eccentricity(net: Network, node: int) -> int:
    """Greatest hop distance from ``node`` to any other node.

    Raises:
        TopologyError: if the network is disconnected (eccentricity is
            infinite) or ``node`` is unknown.
    """
    dist = bfs_distances(net, node)
    if len(dist) != net.num_nodes:
        raise TopologyError("eccentricity is undefined on a disconnected network")
    return max(dist.values())


def diameter(net: Network, sample: Optional[int] = None) -> int:
    """Hop diameter of a connected network.

    Args:
        net: Network to measure.
        sample: When given, estimate the diameter from this many evenly
            spaced source nodes instead of all of them (a lower bound,
            adequate for progress reporting on large graphs).
    """
    nodes = net.nodes()
    if not nodes:
        raise TopologyError("diameter of an empty network is undefined")
    if sample is not None and sample < len(nodes):
        step = max(1, len(nodes) // sample)
        nodes = nodes[::step]
    return max(eccentricity(net, n) for n in nodes)


def average_shortest_path_hops(net: Network) -> float:
    """Mean hop distance over all ordered reachable node pairs."""
    nodes = net.nodes()
    if len(nodes) < 2:
        raise TopologyError("average path length needs at least two nodes")
    total = 0
    pairs = 0
    for node in nodes:
        dist = bfs_distances(net, node)
        total += sum(d for other, d in dist.items() if other != node)
        pairs += len(dist) - 1
    if pairs == 0:
        raise TopologyError("network has no connected pairs")
    return total / pairs


def degree_histogram(net: Network) -> Dict[int, int]:
    """Map ``degree -> number of nodes with that degree``."""
    hist: Dict[int, int] = {}
    for node in net.nodes():
        d = net.degree(node)
        hist[d] = hist.get(d, 0) + 1
    return hist


def leaf_nodes(net: Network) -> List[int]:
    """Nodes of degree one.

    The paper attributes its small model-vs-simulation discrepancy to
    leaf nodes behaving differently from interior nodes, so the
    experiment runners report this count alongside the results.
    """
    return [n for n in net.nodes() if net.degree(n) == 1]
