"""Exporting experiment results to CSV / JSON for external tooling.

The experiment runners return dataclass rows; these helpers flatten any
sequence of (identically shaped) dataclasses or mappings to CSV and
JSON, so plots can be made with whatever the user prefers without this
library depending on a plotting stack.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from pathlib import Path
from typing import Any, List, Mapping, Sequence, Union

from repro.errors import ReproError
from repro.parallel.checkpoint import atomic_write_text

Row = Union[Mapping[str, Any], Any]  # mapping or dataclass instance


def _row_dict(row: Row) -> dict:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    if isinstance(row, Mapping):
        return dict(row)
    raise ReproError(
        f"cannot export row of type {type(row).__name__}; need a dataclass or mapping"
    )


def rows_to_dicts(rows: Sequence[Row]) -> List[dict]:
    """Normalise rows to dictionaries, checking they share a schema."""
    if not rows:
        raise ReproError("nothing to export: no rows")
    dicts = [_row_dict(row) for row in rows]
    keys = list(dicts[0].keys())
    for index, d in enumerate(dicts[1:], start=1):
        if list(d.keys()) != keys:
            raise ReproError(
                f"row {index} has fields {list(d.keys())}, expected {keys}"
            )
    return dicts


def to_csv(rows: Sequence[Row]) -> str:
    """Render rows as a CSV string (header + one line per row).

    Non-scalar cell values (lists, dicts) are JSON-encoded so the CSV
    stays loadable by standard tools.
    """
    dicts = rows_to_dicts(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(dicts[0].keys()))
    writer.writeheader()
    for d in dicts:
        writer.writerow(
            {
                key: json.dumps(value) if isinstance(value, (list, dict, tuple)) else value
                for key, value in d.items()
            }
        )
    return buffer.getvalue()


def to_json(rows: Sequence[Row], indent: int = 2) -> str:
    """Render rows as a JSON array of objects."""
    return json.dumps(rows_to_dicts(rows), indent=indent, default=_json_default)


def _json_default(value: Any) -> Any:
    # numpy scalars/arrays sneak into results; make them JSON-friendly.
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def write_csv(rows: Sequence[Row], path: Union[str, Path]) -> Path:
    """Atomically write rows to a CSV file; returns the path."""
    path = Path(path)
    atomic_write_text(path, to_csv(rows))
    return path


def write_json(rows: Sequence[Row], path: Union[str, Path]) -> Path:
    """Atomically write rows to a JSON file; returns the path."""
    path = Path(path)
    atomic_write_text(path, to_json(rows))
    return path
