"""Plain-text rendering of experiment results (tables and series).

The benchmarks print the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and legible
in terminal logs and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_cell(value: object, precision: int = 1) -> str:
    """Render one table cell (floats get fixed precision)."""
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 1,
    title: str | None = None,
) -> str:
    """Monospace table with a header rule, column-aligned."""
    str_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence[object], ys: Sequence[object], precision: int = 1
) -> str:
    """One labelled (x, y) series as ``name: (x -> y), ...`` lines."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} x-values vs {len(ys)} y-values")
    pairs = ", ".join(
        f"{format_cell(x, precision)}→{format_cell(y, precision)}"
        for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (0 when both are 0)."""
    if reference == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - reference) / abs(reference)
