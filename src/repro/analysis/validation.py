"""Quantitative validation of the Markov model against simulation.

The paper validates its model by eyeballing curve agreement; this module
makes the comparison a first-class, testable object: given a
:class:`~repro.sim.simulator.SimulationResult`, it solves the chain on
the measured parameters and reports per-state and aggregate discrepancy
metrics (used by the integration tests, the validation example, and
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.report import render_table
from repro.errors import MarkovModelError
from repro.markov.model import ElasticQoSMarkovModel
from repro.qos.spec import ElasticQoS
from repro.sim.simulator import SimulationResult


@dataclass
class ValidationReport:
    """Agreement between one simulation run and the solved chain."""

    simulated_bandwidth: float
    analytic_bandwidth: float
    simulated_pi: np.ndarray
    analytic_pi: np.ndarray
    level_bandwidths: np.ndarray

    @property
    def bandwidth_error(self) -> float:
        """Relative error of the analytic average bandwidth."""
        if self.simulated_bandwidth == 0:
            return 0.0 if self.analytic_bandwidth == 0 else float("inf")
        return (
            abs(self.analytic_bandwidth - self.simulated_bandwidth)
            / self.simulated_bandwidth
        )

    @property
    def total_variation(self) -> float:
        """TV distance between empirical and analytic level distributions."""
        return 0.5 * float(np.abs(self.simulated_pi - self.analytic_pi).sum())

    @property
    def kl_divergence(self) -> float:
        """KL(sim ‖ model) with additive smoothing (nats).

        Both distributions are smoothed by 1e-9 so empty states do not
        produce infinities; the result is a diagnostic, not a test
        statistic.
        """
        p = self.simulated_pi + 1e-9
        q = self.analytic_pi + 1e-9
        p = p / p.sum()
        q = q / q.sum()
        return float((p * np.log(p / q)).sum())

    def per_state_rows(self) -> List[List[float]]:
        """Rows ``[level, bandwidth, sim pi, model pi, abs diff]``."""
        rows = []
        for i in range(len(self.level_bandwidths)):
            rows.append(
                [
                    i,
                    float(self.level_bandwidths[i]),
                    float(self.simulated_pi[i]),
                    float(self.analytic_pi[i]),
                    float(abs(self.simulated_pi[i] - self.analytic_pi[i])),
                ]
            )
        return rows

    def render(self) -> str:
        """Human-readable validation block."""
        head = (
            f"average bandwidth: sim {self.simulated_bandwidth:.1f} Kb/s, "
            f"model {self.analytic_bandwidth:.1f} Kb/s "
            f"(error {self.bandwidth_error:.1%})\n"
            f"level distribution: TV distance {self.total_variation:.4f}, "
            f"KL {self.kl_divergence:.4f}"
        )
        table = render_table(
            ["level", "Kb/s", "sim π", "model π", "|diff|"],
            self.per_state_rows(),
            precision=4,
        )
        return head + "\n" + table


def validate_against_model(
    result: SimulationResult, qos: ElasticQoS
) -> ValidationReport:
    """Solve the chain on the run's measured parameters and compare.

    Raises:
        MarkovModelError: when the QoS shape does not match the
            parameters measured by the run.
    """
    if qos.num_levels != result.params.num_levels:
        raise MarkovModelError(
            f"QoS has {qos.num_levels} levels but the run measured "
            f"{result.params.num_levels}"
        )
    model = ElasticQoSMarkovModel(qos, result.params)
    solution = model.solve()
    return ValidationReport(
        simulated_bandwidth=result.average_bandwidth,
        analytic_bandwidth=solution.average_bandwidth,
        simulated_pi=np.asarray(result.level_occupancy, dtype=float),
        analytic_pi=solution.pi,
        level_bandwidths=solution.level_bandwidths,
    )
