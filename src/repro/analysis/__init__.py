"""Experiment runners, the ideal-bandwidth formula, and report rendering."""

from __future__ import annotations

from repro.analysis.experiments import (
    Figure2Result,
    Figure2Row,
    Figure3Row,
    Figure4Series,
    RunSettings,
    Table1Row,
    paper_connection_qos,
    run_figure2,
    run_figure3,
    run_figure4,
    run_table1,
    simulate_point,
)
from repro.analysis.chaining import (
    ChainingSnapshot,
    chaining_for_route,
    expected_arrival_chaining,
    snapshot_chaining,
)
from repro.analysis.confidence import ReplicationResult, replicate
from repro.analysis.export import to_csv, to_json, write_csv, write_json
from repro.analysis.ideal import clamped_ideal, ideal_average_bandwidth, ideal_for_network
from repro.analysis.report import relative_error, render_series, render_table
from repro.analysis.validation import ValidationReport, validate_against_model

__all__ = [
    "Figure2Result",
    "Figure2Row",
    "Figure3Row",
    "Figure4Series",
    "RunSettings",
    "Table1Row",
    "paper_connection_qos",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_table1",
    "simulate_point",
    "ChainingSnapshot",
    "chaining_for_route",
    "expected_arrival_chaining",
    "snapshot_chaining",
    "ReplicationResult",
    "replicate",
    "to_csv",
    "to_json",
    "write_csv",
    "write_json",
    "clamped_ideal",
    "ideal_average_bandwidth",
    "ideal_for_network",
    "relative_error",
    "render_series",
    "render_table",
    "ValidationReport",
    "validate_against_model",
]
