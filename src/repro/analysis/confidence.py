"""Multi-seed replication: confidence in simulated quantities.

The paper reports single simulation curves; a production-quality
reproduction should quantify run-to-run variation.  This module reruns
an arbitrary seeded experiment across seeds and reports mean, standard
deviation and a normal-approximation confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.errors import SimulationError

#: An experiment: seed in, scalar metric out.
SeededMetric = Callable[[int], float]

#: Two-sided z values for the common confidence levels.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass
class ReplicationResult:
    """Summary of one metric replicated across seeds."""

    values: List[float]
    mean: float
    std: float
    half_width: float
    confidence: float

    @property
    def interval(self) -> tuple[float, float]:
        """The confidence interval (lower, upper)."""
        return (self.mean - self.half_width, self.mean + self.half_width)

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (0 when the mean is 0)."""
        return self.half_width / abs(self.mean) if self.mean else 0.0

    def describe(self) -> str:
        """One-line summary, e.g. ``361.4 ± 4.2 (95% CI, n=5)``."""
        return (
            f"{self.mean:.1f} ± {self.half_width:.1f} "
            f"({self.confidence:.0%} CI, n={len(self.values)})"
        )


def replicate(
    metric: SeededMetric,
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> ReplicationResult:
    """Run ``metric`` for each seed and summarise.

    Args:
        metric: Seeded experiment returning one scalar.
        seeds: At least two distinct seeds.
        confidence: One of 0.90 / 0.95 / 0.99.

    Raises:
        SimulationError: on fewer than two seeds, duplicate seeds, or an
            unsupported confidence level.
    """
    if len(seeds) < 2:
        raise SimulationError("need at least two seeds for a confidence interval")
    if len(set(seeds)) != len(seeds):
        raise SimulationError("seeds must be distinct")
    if confidence not in _Z_VALUES:
        raise SimulationError(
            f"unsupported confidence {confidence}; choose from {sorted(_Z_VALUES)}"
        )
    values = [float(metric(seed)) for seed in seeds]
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    half_width = _Z_VALUES[confidence] * std / math.sqrt(n)
    return ReplicationResult(
        values=values,
        mean=mean,
        std=std,
        half_width=half_width,
        confidence=confidence,
    )
