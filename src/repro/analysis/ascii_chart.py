"""Terminal line charts: eyeball the paper's figures without matplotlib.

The benchmarks and CLI print result *tables*; for the figures it is
often easier to see the shape directly.  :func:`ascii_chart` renders one
or more (x, y) series on a character grid with axis labels — enough to
recognise "falls from B_max toward B_min" or "flat across the sweep" at
a glance, with zero plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError

#: Glyphs assigned to series in declaration order.
_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render labelled (x, y) series as an ASCII chart.

    Args:
        series: Mapping from series name to its (x, y) points.  Up to
            eight series; each gets a marker glyph from ``*o+x#@%&``.
        width: Plot-area width in characters (>= 10).
        height: Plot-area height in rows (>= 4).
        x_label: Caption under the x axis.
        y_label: Caption above the y axis.

    Returns:
        A multi-line string: y-axis scale, grid with markers, x-axis
        scale, and a legend mapping glyphs to series names.
    """
    if not series:
        raise ReproError("nothing to chart: no series")
    if len(series) > len(_MARKERS):
        raise ReproError(f"at most {len(_MARKERS)} series supported")
    if width < 10 or height < 4:
        raise ReproError("chart needs width >= 10 and height >= 4")
    points = [pt for pts in series.values() for pt in pts]
    if not points:
        raise ReproError("all series are empty")

    xs = [float(p[0]) for p in points]
    ys = [float(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (_name, pts) in zip(_MARKERS, series.items()):
        for x, y in pts:
            col = round((float(x) - x_lo) / x_span * (width - 1))
            row = round((float(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{y_hi:>10.1f} |"
        elif i == height - 1:
            prefix = f"{y_lo:>10.1f} |"
        else:
            prefix = " " * 10 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + " +" + "-" * width)
    x_axis = f"{x_lo:<12.6g}{' ' * max(0, width - 24)}{x_hi:>12.6g}"
    lines.append(" " * 12 + x_axis)
    if x_label:
        lines.append(" " * 12 + x_label.center(width))
    legend = "   ".join(
        f"{marker} {name}" for marker, name in zip(_MARKERS, series.keys())
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def chart_rows(
    rows: Sequence[object],
    x_field: str,
    y_fields: Sequence[str],
    **kwargs,
) -> str:
    """Chart dataclass rows directly (e.g. Figure2Row lists).

    Args:
        rows: Sequence of objects exposing the named attributes.
        x_field: Attribute used for x.
        y_fields: One series per named attribute.
    """
    if not rows:
        raise ReproError("nothing to chart: no rows")
    series: Dict[str, List[Tuple[float, float]]] = {}
    for field in y_fields:
        try:
            series[field] = [
                (float(getattr(row, x_field)), float(getattr(row, field)))
                for row in rows
            ]
        except AttributeError as exc:
            raise ReproError(str(exc)) from exc
    return ascii_chart(series, **kwargs)
