"""Static chaining analysis: Pf and Ps from a network snapshot.

Section 3.3: the chaining probabilities "are network-dependent
parameters … when the underlying network is a regular-topology network,
these probabilities depend solely on the network topology and the
average number of hops of channels."  The simulator estimates them by
averaging over events; this module computes them *exactly* for a given
set of established channels:

* two channels are **directly chained** when their primaries share at
  least one link;
* **indirectly chained** when they are not directly chained but a third
  channel shares a link with both (distance 2 in the channel-overlap
  graph).

For a hypothetical new channel the same quantities are conditional on
its route; averaging over many random routes gives the arrival-time
Pf/Ps the Markov model needs, which the tests cross-check against the
event-averaged estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.channels.manager import NetworkManager
from repro.errors import EstimationError
from repro.topology.graph import LinkId


@dataclass
class ChainingSnapshot:
    """Exact chaining structure of the current channel population."""

    num_channels: int
    pf: float
    ps: float
    #: Per-channel count of directly-chained peers.
    direct_degree: Dict[int, int]
    #: Per-channel count of indirectly-chained peers.
    indirect_degree: Dict[int, int]

    @property
    def mean_direct_degree(self) -> float:
        """Average number of directly-chained peers per channel."""
        if not self.direct_degree:
            return 0.0
        return sum(self.direct_degree.values()) / len(self.direct_degree)


def snapshot_chaining(manager: NetworkManager) -> ChainingSnapshot:
    """Compute exact pairwise chaining over all ACTIVE primaries.

    Pf (Ps) is the probability that a uniformly random ordered pair of
    distinct channels is directly (indirectly) chained — the population
    analogue of the per-event probabilities of §3.2.
    """
    ids: List[int] = [
        cid for cid, conn in manager.connections.items() if not conn.on_backup
    ]
    n = len(ids)
    direct_degree: Dict[int, int] = {cid: 0 for cid in ids}
    indirect_degree: Dict[int, int] = {cid: 0 for cid in ids}
    if n < 2:
        return ChainingSnapshot(n, 0.0, 0.0, direct_degree, indirect_degree)

    # Direct neighbours via the per-link index (C-speed set unions).
    neighbours: Dict[int, Set[int]] = {}
    for cid in ids:
        conn = manager.connections[cid]
        peers: Set[int] = set()
        for lid in conn.primary_links:
            peers.update(manager.channels_on_link.get(lid, ()))
        peers.discard(cid)
        neighbours[cid] = peers
        direct_degree[cid] = len(peers)

    total_direct = 0
    total_indirect = 0
    for cid in ids:
        two_hop: Set[int] = set()
        for peer in neighbours[cid]:
            two_hop.update(neighbours.get(peer, ()))
        two_hop -= neighbours[cid]
        two_hop.discard(cid)
        indirect_degree[cid] = len(two_hop)
        total_direct += direct_degree[cid]
        total_indirect += len(two_hop)

    pairs = n * (n - 1)
    return ChainingSnapshot(
        num_channels=n,
        pf=total_direct / pairs,
        ps=total_indirect / pairs,
        direct_degree=direct_degree,
        indirect_degree=indirect_degree,
    )


def chaining_for_route(
    manager: NetworkManager, route_links: Sequence[LinkId]
) -> tuple[float, float]:
    """Exact (Pf, Ps) a hypothetical new channel on ``route_links`` sees.

    Returns the fractions of existing ACTIVE channels that would be
    directly / indirectly chained with a channel using that route.
    """
    live = [
        cid for cid, conn in manager.connections.items() if not conn.on_backup
    ]
    if not live:
        raise EstimationError("no live channels to chain against")
    direct: Set[int] = set()
    for lid in route_links:
        direct.update(manager.channels_on_link.get(lid, ()))
    indirect: Set[int] = set()
    for cid in direct:
        conn = manager.connections.get(cid)
        if conn is None:
            continue
        for lid in conn.primary_links:
            indirect.update(manager.channels_on_link.get(lid, ()))
    indirect -= direct
    return len(direct) / len(live), len(indirect) / len(live)


def expected_arrival_chaining(
    manager: NetworkManager,
    num_samples: int,
    rng: np.random.Generator,
) -> tuple[float, float]:
    """Monte-Carlo (Pf, Ps) for a random future arrival.

    Samples random node pairs, routes them like the manager would
    (shortest admissible path), and averages the exact per-route
    chaining fractions — the static counterpart of the simulator's
    event-averaged estimates.
    """
    from repro.routing.shortest import shortest_path  # local: avoid cycle at import

    if num_samples < 1:
        raise EstimationError("need at least one sample")
    nodes = np.array(manager.topology.nodes())
    pf_acc: List[float] = []
    ps_acc: List[float] = []
    attempts = 0
    while len(pf_acc) < num_samples and attempts < 20 * num_samples:
        attempts += 1
        src, dst = rng.choice(nodes, size=2, replace=False)
        path = shortest_path(manager.topology, int(src), int(dst))
        if path is None:
            continue
        links = manager.topology.path_links(path)
        pf, ps = chaining_for_route(manager, links)
        pf_acc.append(pf)
        ps_acc.append(ps)
    if not pf_acc:
        raise EstimationError("could not route any chaining sample")
    return float(np.mean(pf_acc)), float(np.mean(ps_acc))
