"""Experiment runners for every table and figure in the paper's §4.

Each ``run_*`` function regenerates the rows/series of one exhibit:

* :func:`run_figure2`  — average bandwidth vs. number of DR-connections
  (simulation, 9-state Markov model, ideal formula);
* :func:`run_table1`   — average bandwidth for Δ = 100 (5 states) vs.
  Δ = 50 (9 states) on Random (Waxman) and Tier (transit-stub) networks;
* :func:`run_figure3`  — average bandwidth and edge count vs. network
  size at a fixed number of connections;
* :func:`run_figure4`  — average bandwidth vs. link failure rate γ for
  two populations.  As in the paper ("A Markov chain with 9 states is
  used to evaluate the effect"), the sweep itself is analytic: the
  chain parameters are measured once per population and γ is then swept
  in the chain; optional simulation spot-checks inject real failures.

Every exhibit is a campaign of *independent* simulation points, so the
runners describe each point as a :class:`~repro.parallel.SimJob` and
execute the batch through :func:`~repro.parallel.run_sim_jobs` —
sequentially by default, or across worker processes with ``jobs=N``
(also via ``REPRO_JOBS`` / ``repro ... --jobs N``).  Per-job seeds are
spawned from ``settings.seed`` with ``np.random.SeedSequence``, and
each job builds its own topology from the campaign's topology seed, so
results are bitwise identical for every worker count (see DESIGN.md
§12).

The functions take explicit size parameters so the benchmarks can run a
laptop-scale version by default and the exact paper scale under
``REPRO_FULL=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


from repro.analysis.ideal import ideal_average_bandwidth
from repro.markov.model import ElasticQoSMarkovModel
from repro.parallel import (
    CampaignCheckpoint,
    RetryPolicy,
    SimJob,
    SimJobResult,
    TopologySpec,
    derive_seeds,
    run_sim_jobs,
)
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.sim.simulator import ElasticQoSSimulator, SimulationConfig, SimulationResult
from repro.sim.workload import WorkloadConfig
from repro.topology.graph import Network
from repro.topology.metrics import average_shortest_path_hops
from repro.topology.transit_stub import TransitStubParams
from repro.units import (
    PAPER_ARRIVAL_RATE,
    PAPER_B_MAX,
    PAPER_B_MIN,
    PAPER_INCREMENT_SMALL,
    PAPER_LINK_CAPACITY,
)

#: Optional per-job timing collector: pass a list and the runner's
#: :class:`SimJobResult` objects (with ``wall_time`` / ``worker_pid``)
#: are appended to it — the benchmarks archive these breakdowns.
TimingSink = Optional[List[SimJobResult]]


def paper_connection_qos(
    increment: float = PAPER_INCREMENT_SMALL,
    b_min: float = PAPER_B_MIN,
    b_max: float = PAPER_B_MAX,
    utility: float = 1.0,
    num_backups: int = 1,
) -> ConnectionQoS:
    """The QoS contract used throughout the paper's evaluation."""
    return ConnectionQoS(
        performance=ElasticQoS(b_min=b_min, b_max=b_max, increment=increment, utility=utility),
        dependability=DependabilityQoS(num_backups=num_backups),
    )


@dataclass
class RunSettings:
    """Shared knobs of all experiment runners."""

    capacity: float = PAPER_LINK_CAPACITY
    arrival_rate: float = PAPER_ARRIVAL_RATE
    warmup_events: int = 300
    measure_events: int = 1500
    sample_interval: int = 10
    seed: int = 7
    routing: str = "dijkstra"


def simulate_point(
    net: Network,
    offered: int,
    qos: ConnectionQoS,
    settings: RunSettings,
    link_failure_rate: float = 0.0,
    repair_rate: float = 0.0,
    seed_offset: int = 0,
    seed: Optional[int] = None,
) -> Tuple[SimulationResult, ElasticQoSMarkovModel]:
    """Run one simulation on an existing network, in-process.

    The campaign runners below go through :mod:`repro.parallel` instead;
    this remains the one-off entry point (CLI ``validate``, ablations,
    tests).  ``seed`` overrides the legacy ``settings.seed +
    seed_offset`` derivation when given.
    """
    config = SimulationConfig(
        qos=qos,
        offered_connections=offered,
        workload=WorkloadConfig(
            arrival_rate=settings.arrival_rate,
            termination_rate=settings.arrival_rate,
            link_failure_rate=link_failure_rate,
            repair_rate=repair_rate,
        ),
        warmup_events=settings.warmup_events,
        measure_events=settings.measure_events,
        sample_interval=settings.sample_interval,
        routing=settings.routing,
    )
    sim = ElasticQoSSimulator(
        net, config, seed=settings.seed + seed_offset if seed is None else seed
    )
    result = sim.run()
    model = ElasticQoSMarkovModel(qos.performance, result.params)
    return result, model


def _collect(timing_sink: TimingSink, results: Sequence[SimJobResult]) -> None:
    """Append the campaign's per-job timings to the caller's sink."""
    if timing_sink is not None:
        timing_sink.extend(results)


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------
@dataclass
class Figure2Row:
    """One x-position of Figure 2."""

    offered: int
    population: float
    simulated: float
    analytic: float
    ideal: float


@dataclass
class Figure2Result:
    """All series of Figure 2 plus the topology facts the caption quotes."""

    rows: List[Figure2Row]
    nodes: int
    edges: int
    average_degree: float
    average_hops: float


def run_figure2(
    connection_counts: Sequence[int],
    nodes: int = 100,
    edges: int = 354,
    increment: float = PAPER_INCREMENT_SMALL,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    timing_sink: TimingSink = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
) -> Figure2Result:
    """Average bandwidth vs. number of DR-connections (Figure 2)."""
    settings = settings or RunSettings()
    seeds = derive_seeds(settings.seed, 1 + len(connection_counts))
    topology = TopologySpec(
        "waxman", settings.capacity, seeds[0], nodes=nodes, edges=edges
    )
    qos = paper_connection_qos(increment=increment)
    batch = [
        SimJob.from_settings(
            ("figure2", offered), topology, offered, qos, settings, seeds[1 + index]
        )
        for index, offered in enumerate(connection_counts)
    ]
    results = run_sim_jobs(batch, jobs=jobs, retry=retry, checkpoint=checkpoint)
    _collect(timing_sink, results)

    # The caption's topology facts come from the same spec every worker
    # built from, so this parent-side build is the jobs' exact network.
    net = topology.build()
    avghop = average_shortest_path_hops(net)
    rows: List[Figure2Row] = []
    for offered, res in zip(connection_counts, results):
        result = res.result
        model = ElasticQoSMarkovModel(qos.performance, result.params)
        rows.append(
            Figure2Row(
                offered=offered,
                population=result.measurement.average_population,
                simulated=result.average_bandwidth,
                analytic=model.average_bandwidth(),
                ideal=ideal_average_bandwidth(
                    settings.capacity, net.num_links, max(1, offered), avghop
                ),
            )
        )
    return Figure2Result(
        rows=rows,
        nodes=net.num_nodes,
        edges=net.num_links,
        average_degree=2.0 * net.num_links / net.num_nodes,
        average_hops=avghop,
    )


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
@dataclass
class Table1Row:
    """One row of Table 1: offered connections x 4 scheme columns."""

    offered: int
    random_5_states: float
    random_9_states: float
    tier_5_states: float
    tier_9_states: float


def run_table1(
    connection_counts: Sequence[int],
    nodes: int = 100,
    edges: int = 354,
    tier_params: Optional[TransitStubParams] = None,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    timing_sink: TimingSink = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
) -> List[Table1Row]:
    """Average bandwidth for different increment sizes (Table 1).

    The "Tier" network admits far fewer connections than offered (the
    paper: "most DR-connections are rejected due to the shortage of
    bandwidths in the transit-stub network"); the offered count is the
    row label, as in the paper.
    """
    settings = settings or RunSettings()
    seeds = derive_seeds(settings.seed, 2 + 4 * len(connection_counts))
    random_topology = TopologySpec(
        "waxman", settings.capacity, seeds[0], nodes=nodes, edges=edges
    )
    tier_topology = TopologySpec(
        "transit-stub", settings.capacity, seeds[1], tier=tier_params
    )
    span = PAPER_B_MAX - PAPER_B_MIN
    qos_small = paper_connection_qos(increment=span / 8)  # 9 states
    qos_large = paper_connection_qos(increment=span / 4)  # 5 states
    schemes = (
        ("random_5", random_topology, qos_large),
        ("random_9", random_topology, qos_small),
        ("tier_5", tier_topology, qos_large),
        ("tier_9", tier_topology, qos_small),
    )
    batch: List[SimJob] = []
    next_seed = iter(seeds[2:])
    for offered in connection_counts:
        for name, topology, qos in schemes:
            batch.append(
                SimJob.from_settings(
                    ("table1", offered, name), topology, offered, qos,
                    settings, next(next_seed),
                )
            )
    results = run_sim_jobs(batch, jobs=jobs, retry=retry, checkpoint=checkpoint)
    _collect(timing_sink, results)

    rows: List[Table1Row] = []
    by_key = {res.key: res.result.average_bandwidth for res in results}
    for offered in connection_counts:
        rows.append(
            Table1Row(
                offered=offered,
                random_5_states=by_key[("table1", offered, "random_5")],
                random_9_states=by_key[("table1", offered, "random_9")],
                tier_5_states=by_key[("table1", offered, "tier_5")],
                tier_9_states=by_key[("table1", offered, "tier_9")],
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------
@dataclass
class Figure3Row:
    """One x-position of Figure 3."""

    nodes: int
    edges: int
    simulated: float
    analytic: float


def run_figure3(
    node_counts: Sequence[int],
    connections: int = 3000,
    settings: Optional[RunSettings] = None,
    increment: float = PAPER_INCREMENT_SMALL,
    jobs: Optional[int] = None,
    timing_sink: TimingSink = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
) -> List[Figure3Row]:
    """Average bandwidth vs. network size (Figure 3).

    Waxman parameters are held as the paper holds them, so the edge
    count "increases rapidly with the number of nodes" (density is
    preserved, edges grow ~quadratically).
    """
    settings = settings or RunSettings()
    seeds = derive_seeds(settings.seed, 2 * len(node_counts))
    qos = paper_connection_qos(increment=increment)
    batch = [
        SimJob.from_settings(
            ("figure3", n),
            TopologySpec("waxman", settings.capacity, seeds[2 * index], nodes=n),
            connections, qos, settings, seeds[2 * index + 1],
        )
        for index, n in enumerate(node_counts)
    ]
    results = run_sim_jobs(batch, jobs=jobs, retry=retry, checkpoint=checkpoint)
    _collect(timing_sink, results)

    rows: List[Figure3Row] = []
    for n, res in zip(node_counts, results):
        result = res.result
        model = ElasticQoSMarkovModel(qos.performance, result.params)
        rows.append(
            Figure3Row(
                nodes=n,
                edges=result.topology_links,
                simulated=result.average_bandwidth,
                analytic=model.average_bandwidth(),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------
@dataclass
class Figure4Series:
    """One population's bandwidth-vs-γ curve."""

    population: int
    failure_rates: List[float]
    analytic: List[float]
    simulated_checks: List[Tuple[float, float]] = field(default_factory=list)


def run_figure4(
    failure_rates: Sequence[float],
    populations: Sequence[int] = (2000, 3000),
    nodes: int = 100,
    edges: int = 354,
    settings: Optional[RunSettings] = None,
    simulate_checks: Sequence[float] = (),
    jobs: Optional[int] = None,
    timing_sink: TimingSink = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
) -> List[Figure4Series]:
    """Average bandwidth vs. link failure rate (Figure 4).

    As in the paper, the γ sweep is evaluated on the 9-state Markov
    chain: the chain's parameters are measured once per population and
    the failure rate is then varied in the generator.  ``simulate_checks``
    optionally lists γ values to validate with real failure injection
    (repairs enabled so the topology is not eroded; see DESIGN.md).
    """
    settings = settings or RunSettings()
    per_population = 1 + len(simulate_checks)
    seeds = derive_seeds(settings.seed, 1 + per_population * len(populations))
    topology = TopologySpec(
        "waxman", settings.capacity, seeds[0], nodes=nodes, edges=edges
    )
    # The per-link rate of a check divides the *network* γ by the link
    # count, which only the built topology knows.
    num_links = topology.build().num_links
    qos = paper_connection_qos()

    batch: List[SimJob] = []
    next_seed = iter(seeds[1:])
    for population in populations:
        batch.append(
            SimJob.from_settings(
                ("figure4", population), topology, population, qos,
                settings, next(next_seed),
            )
        )
        for gamma in simulate_checks:
            batch.append(
                SimJob.from_settings(
                    ("figure4-check", population, gamma), topology, population,
                    qos, settings, next(next_seed),
                    link_failure_rate=gamma / max(1, num_links),
                    repair_rate=1.0,
                )
            )
    results = run_sim_jobs(batch, jobs=jobs, retry=retry, checkpoint=checkpoint)
    _collect(timing_sink, results)
    by_key = {res.key: res.result for res in results}

    series: List[Figure4Series] = []
    for population in populations:
        result = by_key[("figure4", population)]
        analytic: List[float] = []
        for gamma in failure_rates:
            params = result.params.with_failure_rate(gamma)
            model = ElasticQoSMarkovModel(qos.performance, params)
            analytic.append(model.average_bandwidth())
        checks = [
            (gamma, by_key[("figure4-check", population, gamma)].average_bandwidth)
            for gamma in simulate_checks
        ]
        series.append(
            Figure4Series(
                population=population,
                failure_rates=list(failure_rates),
                analytic=analytic,
                simulated_checks=checks,
            )
        )
    return series
