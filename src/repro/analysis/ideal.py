"""The paper's ideal-average-bandwidth formula (Figure 2's dotted line).

"The ideal average bandwidth of the network when all the network
resources are utilized and equally distributed to DR-connections in the
network ... is computed by the following formula:

    bandwidth of one link / avg. no. of realtime channels on one link
        = (BW x Edge) / (NChan x avghop)
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.topology.graph import Network
from repro.topology.metrics import average_shortest_path_hops


def ideal_average_bandwidth(
    link_bandwidth: float, num_edges: int, num_channels: int, average_hops: float
) -> float:
    """Ideal per-channel bandwidth: ``BW * Edge / (NChan * avghop)``."""
    if link_bandwidth <= 0 or num_edges <= 0:
        raise SimulationError("link bandwidth and edge count must be positive")
    if num_channels <= 0 or average_hops <= 0:
        raise SimulationError("channel count and average hops must be positive")
    return link_bandwidth * num_edges / (num_channels * average_hops)


def ideal_for_network(net: Network, num_channels: int) -> float:
    """Ideal bandwidth for a concrete uniform-capacity topology.

    The average hop count of channels is approximated by the topology's
    average shortest-path length, which is what shortest-path routing
    delivers at low load.
    """
    links = net.links()
    if not links:
        raise SimulationError("network has no links")
    capacity = links[0].capacity
    if any(abs(link.capacity - capacity) > 1e-9 for link in links):
        raise SimulationError("ideal formula assumes uniform link capacity")
    avghop = average_shortest_path_hops(net)
    return ideal_average_bandwidth(capacity, net.num_links, num_channels, avghop)


def clamped_ideal(
    ideal: float, b_min: float, b_max: float
) -> float:
    """Ideal bandwidth clamped to the feasible elastic range.

    The raw formula can exceed ``b_max`` (light load: every channel
    saturates at its maximum) or fall below ``b_min`` (overload: no
    admitted channel ever goes below its minimum); the clamp is what an
    admitted channel could actually receive.
    """
    if b_min > b_max:
        raise SimulationError(f"b_min {b_min} exceeds b_max {b_max}")
    return max(b_min, min(b_max, ideal))
