"""Bandwidth units and the paper's default parameter values.

The paper expresses all bandwidths in bits per second; the experiments in
Section 4 use a 10 Mb/s link bandwidth, a 100 Kb/s minimum, a 500 Kb/s
maximum and increments of 50 or 100 Kb/s.  The library stores bandwidth
as plain floats in Kb/s (the unit the paper quotes its results in), and
this module centralises the constants so that every experiment,
benchmark and test agrees on them.
"""

from __future__ import annotations

#: One kilobit per second — the library's base bandwidth unit.
KBPS: float = 1.0

#: One megabit per second expressed in Kb/s.
MBPS: float = 1000.0

#: Link capacity used throughout the paper's evaluation (10 Mb/s).
PAPER_LINK_CAPACITY: float = 10 * MBPS

#: Minimum bandwidth of a DR-connection in the paper (100 Kb/s) — the
#: rate quoted for "recognizable continuous images" of a video service.
PAPER_B_MIN: float = 100 * KBPS

#: Maximum bandwidth of a DR-connection in the paper (500 Kb/s) — the
#: rate quoted for "a high-quality image".
PAPER_B_MAX: float = 500 * KBPS

#: The two increment sizes evaluated in the paper.  Δ = 50 Kb/s yields a
#: 9-state Markov chain, Δ = 100 Kb/s a 5-state chain.
PAPER_INCREMENT_SMALL: float = 50 * KBPS
PAPER_INCREMENT_LARGE: float = 100 * KBPS

#: DR-connection request arrival rate (= termination rate) used in the
#: paper's experiments.
PAPER_ARRIVAL_RATE: float = 0.001

#: Link failure rates swept in Figure 4 (per-link, per unit time).
PAPER_FAILURE_RATES: tuple[float, ...] = (
    1e-7,
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
)


def mbps(value: float) -> float:
    """Convert a value given in Mb/s to the library unit (Kb/s)."""
    return value * MBPS


def kbps(value: float) -> float:
    """Identity helper; documents that a literal is in Kb/s."""
    return value * KBPS
