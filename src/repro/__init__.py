"""repro — reproduction of Kim & Shin, "Performance Evaluation of
Dependable Real-Time Communication with Elastic QoS" (DSN 2001).

The library provides, from the bottom up:

* :mod:`repro.topology` — Waxman and transit-stub topology generators
  (GT-ITM substitution) plus structural metrics;
* :mod:`repro.qos` — traffic specs and the min-max elastic QoS model;
* :mod:`repro.network` — per-link reservation accounting with backup
  multiplexing (overbooking against single link failures);
* :mod:`repro.routing` — admission-aware shortest-path, k-shortest,
  link-disjoint backup routing, and bounded flooding;
* :mod:`repro.elastic` — adaptation policies and localized
  water-filling redistribution of spare bandwidth;
* :mod:`repro.channels` — the network manager orchestrating
  DR-connection establishment, teardown and failure recovery;
* :mod:`repro.sim` — a deterministic discrete-event simulator with
  transition-probability estimation;
* :mod:`repro.markov` — generic CTMC solvers (SHARPE substitution) and
  the paper's N-state elastic-QoS Markov model;
* :mod:`repro.baselines` — single-value QoS and no-backup baselines;
* :mod:`repro.analysis` — runners regenerating every table and figure.

Quickstart::

    import numpy as np
    from repro import (
        ElasticQoSMarkovModel, ElasticQoSSimulator, SimulationConfig,
        paper_connection_qos, paper_random_network,
    )

    rng = np.random.default_rng(1)
    net = paper_random_network(capacity=10_000.0, rng=rng, n=100, target_edges=354)
    config = SimulationConfig(qos=paper_connection_qos(), offered_connections=1500)
    result = ElasticQoSSimulator(net, config, seed=1).run()
    model = ElasticQoSMarkovModel(config.qos.performance, result.params)
    print(result.average_bandwidth, model.average_bandwidth())
"""

from __future__ import annotations

from repro.analysis import (
    RunSettings,
    ideal_average_bandwidth,
    paper_connection_qos,
    run_figure2,
    run_figure3,
    run_figure4,
    run_table1,
)
from repro.baselines import no_backup_contract, single_value_contract
from repro.channels import ConnectionState, DRConnection, NetworkManager
from repro.elastic import AdaptationPolicy, EqualShare, MaxUtility, UtilityProportional
from repro.errors import ReproError
from repro.markov import ElasticQoSMarkovModel, MarkovParameters, steady_state
from repro.qos import ConnectionQoS, DependabilityQoS, ElasticQoS, TrafficSpec
from repro.sim import (
    ElasticQoSSimulator,
    EventScheduler,
    SimulationConfig,
    SimulationResult,
    WorkloadConfig,
)
from repro.topology import (
    Network,
    TransitStubParams,
    WaxmanParams,
    paper_random_network,
    transit_stub_network,
    waxman_network,
)

__version__ = "1.0.0"

__all__ = [
    "RunSettings",
    "ideal_average_bandwidth",
    "paper_connection_qos",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_table1",
    "no_backup_contract",
    "single_value_contract",
    "ConnectionState",
    "DRConnection",
    "NetworkManager",
    "AdaptationPolicy",
    "EqualShare",
    "MaxUtility",
    "UtilityProportional",
    "ReproError",
    "ElasticQoSMarkovModel",
    "MarkovParameters",
    "steady_state",
    "ConnectionQoS",
    "DependabilityQoS",
    "ElasticQoS",
    "TrafficSpec",
    "ElasticQoSSimulator",
    "EventScheduler",
    "SimulationConfig",
    "SimulationResult",
    "WorkloadConfig",
    "Network",
    "TransitStubParams",
    "WaxmanParams",
    "paper_random_network",
    "transit_stub_network",
    "waxman_network",
    "__version__",
]
