"""Head-to-head comparison harness: elastic QoS vs. the baselines.

Used by the ablation benchmarks (A1: elastic vs. single-value; A2:
multiplexing on/off via disjoint primaries accounting) and by the
capacity-planning example.  Each scheme sees the *same* request
sequence on a fresh copy of the reservation state, so differences are
attributable to the scheme alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.channels.manager import NetworkManager
from repro.qos.spec import ConnectionQoS
from repro.topology.graph import Network


@dataclass
class SchemeOutcome:
    """Aggregate outcome of one scheme under the common request sequence."""

    name: str
    offered: int
    accepted: int
    average_bandwidth: float
    total_reserved_backup: float
    network_utilization: float

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of offered requests admitted."""
        return self.accepted / self.offered if self.offered else 1.0


def compare_schemes(
    topology: Network,
    schemes: Sequence[Tuple[str, ConnectionQoS]],
    offered: int,
    seed: int = 0,
) -> List[SchemeOutcome]:
    """Offer the same random request sequence to every scheme.

    Each scheme gets its own :class:`NetworkManager` over the shared
    topology.  Requests are uniformly random distinct node pairs; the
    sequence is identical across schemes (same seed).
    """
    rng = np.random.default_rng(seed)
    nodes = np.array(topology.nodes())
    pairs = []
    for _ in range(offered):
        src, dst = rng.choice(nodes, size=2, replace=False)
        pairs.append((int(src), int(dst)))

    outcomes: List[SchemeOutcome] = []
    for name, qos in schemes:
        manager = NetworkManager(topology)
        for src, dst in pairs:
            manager.request_connection(src, dst, qos)
        backup_reserved = sum(ls.backup_reserved for ls in manager.state.links())
        outcomes.append(
            SchemeOutcome(
                name=name,
                offered=offered,
                accepted=manager.stats.accepted,
                average_bandwidth=manager.average_live_bandwidth(),
                total_reserved_backup=backup_reserved,
                network_utilization=manager.state.utilization(),
            )
        )
    return outcomes


def multiplexing_savings(manager: NetworkManager) -> Dict[str, float]:
    """How much backup bandwidth multiplexing saved on this manager.

    Without multiplexing each backup would reserve its full minimum on
    every link it traverses; with multiplexing only the worst single
    failure's demand is reserved.  Returns totals across all links.
    """
    naive = 0.0
    multiplexed = 0.0
    for ls in manager.state.links():
        naive += sum(b_min for b_min, _links in ls.backup_members.values())
        multiplexed += ls.backup_reserved
    saved = naive - multiplexed
    return {
        "naive_reservation": naive,
        "multiplexed_reservation": multiplexed,
        "saved": saved,
        "savings_ratio": (saved / naive) if naive > 0 else 0.0,
    }
