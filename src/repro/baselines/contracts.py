"""Baseline QoS contracts the paper compares (implicitly) against.

The elastic scheme's value proposition is relative to two older models:

* the **single-value** QoS model (Han & Shin's original backup-channel
  scheme): each connection reserves exactly one bandwidth value
  forever.  Requesting only the minimum wastes the idle backup
  capacity ("bare-bone service even when there are plenty of resources
  available"); requesting the maximum causes rejections.
* **no fault tolerance**: plain real-time channels without backups —
  cheapest, but a single link failure kills the connection.

Both are expressed through the same machinery (a degenerate elastic
range / a zero-backup dependability QoS) so every comparison exercises
identical code paths.
"""

from __future__ import annotations

from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS, single_value_qos


def single_value_contract(
    bandwidth: float, utility: float = 1.0, num_backups: int = 1
) -> ConnectionQoS:
    """A DR-connection that reserves exactly ``bandwidth``, no elasticity."""
    return ConnectionQoS(
        performance=single_value_qos(bandwidth, utility=utility),
        dependability=DependabilityQoS(num_backups=num_backups),
    )


def no_backup_contract(
    b_min: float, b_max: float, increment: float, utility: float = 1.0
) -> ConnectionQoS:
    """An elastic real-time connection without any backup channel."""
    return ConnectionQoS(
        performance=ElasticQoS(
            b_min=b_min, b_max=b_max, increment=increment, utility=utility
        ),
        dependability=DependabilityQoS(num_backups=0),
    )
