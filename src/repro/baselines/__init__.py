"""Baseline schemes (single-value QoS, no backup) and comparison tools."""

from __future__ import annotations

from repro.baselines.compare import SchemeOutcome, compare_schemes, multiplexing_savings
from repro.baselines.contracts import no_backup_contract, single_value_contract

__all__ = [
    "SchemeOutcome",
    "compare_schemes",
    "multiplexing_savings",
    "no_backup_contract",
    "single_value_contract",
]
