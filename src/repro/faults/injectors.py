"""Pluggable fault injectors beyond the paper's single-link model.

The paper's experiments use independent Poisson single-link failures
(§4).  This module keeps that as the default :class:`FaultInjector` and
adds three richer processes for stress-testing the recovery machinery:

* :class:`NodeFailureInjector` — a failure event takes out a whole
  node: every alive incident link fails atomically, so primaries *and*
  backups through that node die in the same instant;
* :class:`CorrelatedBurstInjector` — each failure event fails a burst
  of ``k`` links, grown from a uniformly chosen seed link either by a
  shared-node kernel (cluster of links touching the burst so far) or a
  geographic distance kernel (``exp(-d/scale)`` over link midpoints, a
  Waxman-style locality model);
* :class:`MarkovOnOffInjector` — per-link on/off processes with
  heterogeneous rates: each link gets a lognormal rate multiplier, and
  the injector keeps the alive/failed multiplier sums incrementally so
  the per-event rate computation stays O(1).

Every injector draws its random picks from the workload's generator, so
one seed still fully determines a run, and all of them select from the
state's incrementally-maintained sorted alive/failed link lists — no
per-event rescan of the link table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.channels.records import EventImpact
from repro.errors import FaultInjectionError
from repro.network.state import NetworkState
from repro.topology.graph import LinkId, Network

if TYPE_CHECKING:  # import would be circular at runtime (sim -> faults)
    from repro.sim.workload import Workload

#: Supported failure processes.
FAULT_MODES = ("single", "node", "burst", "markov")
#: Supported burst-growth kernels.
BURST_KERNELS = ("shared-node", "distance")


@dataclass(frozen=True)
class FaultConfig:
    """Declarative description of one fault-injection setup.

    Attributes:
        mode: Failure process — ``single`` (the paper's model),
            ``node``, ``burst`` or ``markov``.
        burst_size: Links failed per event in ``burst`` mode (the burst
            may come up short when the candidate pool dries up).
        burst_kernel: How a burst grows from its seed link:
            ``shared-node`` (links touching the cluster) or ``distance``
            (geographic ``exp(-d/distance_scale)`` kernel over link
            midpoints; requires node positions).
        distance_scale: Length scale of the distance kernel.
        activation_fault_prob: Probability that a backup *activation*
            itself fails, dropping the connection even though the backup
            path was healthy (models signalling/switchover faults).
        rate_spread: σ of the lognormal per-link rate multipliers in
            ``markov`` mode (0 = homogeneous rates).
        rate_seed: Seed for drawing the multipliers, independent of the
            simulation seed so the rate landscape can be held fixed
            across replications.
    """

    mode: str = "single"
    burst_size: int = 2
    burst_kernel: str = "shared-node"
    distance_scale: float = 0.25
    activation_fault_prob: float = 0.0
    rate_spread: float = 0.0
    rate_seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise FaultInjectionError(
                f"unknown fault mode {self.mode!r}; choose from {FAULT_MODES}"
            )
        if self.burst_kernel not in BURST_KERNELS:
            raise FaultInjectionError(
                f"unknown burst kernel {self.burst_kernel!r}; "
                f"choose from {BURST_KERNELS}"
            )
        if self.mode == "burst" and self.burst_size < 1:
            raise FaultInjectionError(
                f"burst_size must be positive, got {self.burst_size}"
            )
        if self.distance_scale <= 0:
            raise FaultInjectionError(
                f"distance_scale must be positive, got {self.distance_scale}"
            )
        if not 0.0 <= self.activation_fault_prob <= 1.0:
            raise FaultInjectionError(
                "activation_fault_prob must be in [0, 1], "
                f"got {self.activation_fault_prob}"
            )
        if self.rate_spread < 0:
            raise FaultInjectionError(
                f"rate_spread must be non-negative, got {self.rate_spread}"
            )


class FaultInjector:
    """The paper's failure process: independent single-link failures.

    Also the base class for the richer injectors; the simulator talks
    only to this interface (category rates + one injection per event).
    """

    def __init__(self, topology: Network, workload: Workload) -> None:
        self.topology = topology
        self.workload = workload

    # -- category rates -------------------------------------------------
    def failure_rate(self, state: NetworkState) -> float:
        """Total failure-event rate given the current state (γ·alive)."""
        return self.workload.config.link_failure_rate * state.num_alive

    def repair_rate(self, state: NetworkState) -> float:
        """Total repair-event rate given the current state (ρ·failed)."""
        return self.workload.config.repair_rate * state.num_failed

    # -- event injection ------------------------------------------------
    def inject_failure(self, manager) -> Optional[EventImpact]:
        """Apply one failure event; ``None`` when nothing can fail."""
        alive = manager.state.alive_link_list()
        if not alive:
            return None
        return manager.fail_link(self.workload.pick_failure(alive))

    def inject_repair(self, manager) -> Optional[EventImpact]:
        """Apply one repair event; ``None`` when nothing is failed."""
        failed = manager.state.failed_link_list()
        if not failed:
            return None
        return manager.repair_link(self.workload.pick_repair(failed))


class NodeFailureInjector(FaultInjector):
    """Each failure event takes out one whole node.

    The victim is uniform over nodes that still have at least one alive
    incident link; all those links fail atomically, so a connection
    whose primary and backup both touch the node is dropped in one event
    (the double-failure regime).  The failure *pressure* still scales
    with the number of alive links (γ·alive), matching the single-link
    model's event frequency for comparable γ.
    """

    def inject_failure(self, manager) -> Optional[EventImpact]:
        state = manager.state
        candidates = [
            node
            for node in self.topology.nodes()
            if any(
                not state.is_failed(link.id)
                for link in self.topology.incident_links(node)
            )
        ]
        if not candidates:
            return None
        victim = candidates[int(self.workload.rng.integers(len(candidates)))]
        return manager.fail_node(victim)


class CorrelatedBurstInjector(FaultInjector):
    """Each failure event fails a correlated burst of links.

    The burst starts at a uniformly chosen alive seed link and grows to
    ``burst_size`` links via the configured kernel.  Bursts shorter than
    ``burst_size`` happen when the candidate pool dries up (e.g. the
    seed's cluster is already mostly failed) and are applied as-is.
    """

    def __init__(
        self, topology: Network, workload: Workload, config: FaultConfig
    ) -> None:
        super().__init__(topology, workload)
        self.config = config
        self._midpoints: Dict[LinkId, Tuple[float, float]] = {}
        if config.burst_kernel == "distance":
            for lid in topology.link_ids():
                pu = topology.position(lid[0])
                pv = topology.position(lid[1])
                if pu is None or pv is None:
                    raise FaultInjectionError(
                        "distance burst kernel needs node positions; "
                        f"link {lid} has unpositioned endpoints"
                    )
                self._midpoints[lid] = ((pu[0] + pv[0]) / 2.0, (pu[1] + pv[1]) / 2.0)

    def inject_failure(self, manager) -> Optional[EventImpact]:
        state = manager.state
        alive = state.alive_link_list()
        if not alive:
            return None
        seed = self.workload.pick_failure(alive)
        burst: List[LinkId] = [seed]
        chosen: Set[LinkId] = {seed}
        while len(burst) < self.config.burst_size:
            nxt = self._grow(state, burst, chosen)
            if nxt is None:
                break
            burst.append(nxt)
            chosen.add(nxt)
        return manager.fail_links(burst)

    def _grow(
        self, state: NetworkState, burst: Sequence[LinkId], chosen: Set[LinkId]
    ) -> Optional[LinkId]:
        """Pick the next burst member, or ``None`` when the pool is dry."""
        if self.config.burst_kernel == "shared-node":
            cluster_nodes = {node for lid in burst for node in lid}
            candidates = sorted(
                {
                    link.id
                    for node in cluster_nodes
                    for link in self.topology.incident_links(node)
                    if link.id not in chosen and not state.is_failed(link.id)
                }
            )
            if not candidates:
                return None
            return candidates[int(self.workload.rng.integers(len(candidates)))]
        # distance kernel: exp(-d/scale) weight from the seed's midpoint.
        seed_mid = self._midpoints[burst[0]]
        scale = self.config.distance_scale
        candidates = [lid for lid in state.alive_link_list() if lid not in chosen]
        if not candidates:
            return None
        weights = []
        for lid in candidates:
            mid = self._midpoints[lid]
            d = math.hypot(mid[0] - seed_mid[0], mid[1] - seed_mid[1])
            weights.append(math.exp(-d / scale))
        total = sum(weights)
        draw = float(self.workload.rng.random()) * total
        acc = 0.0
        for lid, weight in zip(candidates, weights):
            acc += weight
            if draw <= acc:
                return lid
        return candidates[-1]  # numerical edge


class MarkovOnOffInjector(FaultInjector):
    """Per-link Markov on/off failure processes with heterogeneous rates.

    Every link gets a multiplier ``m_l`` drawn once (lognormal with
    unit mean, σ = ``rate_spread``) from ``rate_seed``; its failure rate
    is ``γ·m_l`` while alive and its repair rate ``ρ·m_l`` while failed,
    so failure-prone links also cycle faster — a classic on/off link
    model.  The alive/failed multiplier sums are maintained
    incrementally, keeping the per-event rate computation O(1).
    """

    def __init__(
        self, topology: Network, workload: Workload, config: FaultConfig
    ) -> None:
        super().__init__(topology, workload)
        self.config = config
        rng = np.random.default_rng(config.rate_seed)
        sigma = config.rate_spread
        self.multipliers: Dict[LinkId, float] = {}
        for lid in topology.link_ids():
            if sigma > 0:
                # lognormal with E[m] = 1: mu = -sigma^2 / 2.
                mult = float(np.exp(rng.normal(-0.5 * sigma * sigma, sigma)))
            else:
                mult = 1.0
            self.multipliers[lid] = mult
        self._alive_weight = sum(self.multipliers.values())
        self._failed_weight = 0.0

    def failure_rate(self, state: NetworkState) -> float:
        return self.workload.config.link_failure_rate * self._alive_weight

    def repair_rate(self, state: NetworkState) -> float:
        return self.workload.config.repair_rate * self._failed_weight

    def _weighted_pick(self, pool: Sequence[LinkId], total: float) -> LinkId:
        draw = float(self.workload.rng.random()) * total
        acc = 0.0
        for lid in pool:
            acc += self.multipliers[lid]
            if draw <= acc:
                return lid
        return pool[-1]  # numerical edge

    def inject_failure(self, manager) -> Optional[EventImpact]:
        alive = manager.state.alive_link_list()
        if not alive:
            return None
        lid = self._weighted_pick(alive, self._alive_weight)
        impact = manager.fail_link(lid)
        mult = self.multipliers[lid]
        self._alive_weight -= mult
        self._failed_weight += mult
        return impact

    def inject_repair(self, manager) -> Optional[EventImpact]:
        failed = manager.state.failed_link_list()
        if not failed:
            return None
        lid = self._weighted_pick(failed, self._failed_weight)
        impact = manager.repair_link(lid)
        mult = self.multipliers[lid]
        self._failed_weight -= mult
        self._alive_weight += mult
        return impact


def build_injector(
    config: Optional[FaultConfig], topology: Network, workload: Workload
) -> FaultInjector:
    """Instantiate the injector described by ``config``.

    ``None`` (and mode ``single``) yield the paper's single-link
    injector, which reproduces the legacy simulator loop bit for bit.
    """
    if config is None or config.mode == "single":
        return FaultInjector(topology, workload)
    if config.mode == "node":
        return NodeFailureInjector(topology, workload)
    if config.mode == "burst":
        return CorrelatedBurstInjector(topology, workload, config)
    if config.mode == "markov":
        return MarkovOnOffInjector(topology, workload, config)
    raise FaultInjectionError(f"unknown fault mode {config.mode!r}")
