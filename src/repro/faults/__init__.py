"""Fault injection, beyond-the-paper failure processes and auditing.

Public surface:

* :class:`FaultConfig` + :func:`build_injector` — declarative injector
  setup (``single``/``node``/``burst``/``markov`` failure processes,
  backup-activation faults);
* the injector classes themselves for direct composition;
* :class:`AuditPolicy` / :class:`Auditor` — structured run-time
  invariant auditing with post-mortem event tails.
"""

from __future__ import annotations

from repro.faults.audit import AuditPolicy, AuditTrailEntry, Auditor
from repro.faults.injectors import (
    BURST_KERNELS,
    FAULT_MODES,
    CorrelatedBurstInjector,
    FaultConfig,
    FaultInjector,
    MarkovOnOffInjector,
    NodeFailureInjector,
    build_injector,
)

__all__ = [
    "AuditPolicy",
    "AuditTrailEntry",
    "Auditor",
    "BURST_KERNELS",
    "CorrelatedBurstInjector",
    "FAULT_MODES",
    "FaultConfig",
    "FaultInjector",
    "MarkovOnOffInjector",
    "NodeFailureInjector",
    "build_injector",
]
