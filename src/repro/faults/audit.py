"""Run-time invariant auditing for fault-injected simulations.

The simulator has always been able to run the manager's full invariant
checker every N events (``check_invariants_every``); fault injection
makes *when* to audit part of the experiment design, so the knob is
promoted into a structured :class:`AuditPolicy`:

* ``every_n_events`` — periodic audits, exactly the legacy behaviour;
* ``after_failure`` — audit immediately after every failure event, the
  natural cadence for failure-heavy campaigns (every recovery path just
  exercised gets cross-checked before the next event builds on it).

The :class:`Auditor` keeps a bounded tail of compact per-event records;
when a check trips, it raises :class:`~repro.errors.AuditError` carrying
that tail, so a dead campaign job can be post-mortemed from the
exception alone — no re-run, no full trace recording.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.channels.records import EventImpact
from repro.errors import AuditError, FaultInjectionError, ReproError


@dataclass(frozen=True)
class AuditPolicy:
    """When to run the full invariant audit during a simulation.

    Attributes:
        every_n_events: Audit after every N-th event (0 = no periodic
            audits); subsumes the legacy ``check_invariants_every``.
        after_failure: Also audit immediately after every failure event.
        trace_tail: How many recent events to keep for the post-mortem
            tail attached to :class:`~repro.errors.AuditError`.
    """

    every_n_events: int = 0
    after_failure: bool = False
    trace_tail: int = 32

    def __post_init__(self) -> None:
        if self.every_n_events < 0:
            raise FaultInjectionError(
                f"every_n_events must be non-negative, got {self.every_n_events}"
            )
        if self.trace_tail < 1:
            raise FaultInjectionError(
                f"trace_tail must be positive, got {self.trace_tail}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this policy ever audits anything."""
        return self.every_n_events > 0 or self.after_failure


@dataclass(frozen=True)
class AuditTrailEntry:
    """One compact event record in the auditor's bounded tail."""

    index: int
    time: float
    category: str
    conn_id: Optional[int]
    failed_links: Tuple
    dropped: Tuple
    activated: Tuple
    activation_faults: Tuple

    def __str__(self) -> str:
        parts = [f"#{self.index} t={self.time:.3f} {self.category}"]
        if self.conn_id is not None:
            parts.append(f"conn={self.conn_id}")
        if self.failed_links:
            parts.append(f"failed={list(self.failed_links)}")
        if self.activated:
            parts.append(f"activated={list(self.activated)}")
        if self.dropped:
            parts.append(f"dropped={list(self.dropped)}")
        if self.activation_faults:
            parts.append(f"activation_faults={list(self.activation_faults)}")
        return " ".join(parts)


class Auditor:
    """Applies an :class:`AuditPolicy` to a running simulation."""

    def __init__(self, policy: AuditPolicy, manager) -> None:
        self.policy = policy
        self.manager = manager
        self.tail: Deque[AuditTrailEntry] = deque(maxlen=policy.trace_tail)
        self.checks_run = 0

    def observe(
        self, event_index: int, category: str, impact: Optional[EventImpact]
    ) -> None:
        """Record one event and audit if the policy says so.

        Raises:
            AuditError: when the invariant check fails; carries the
                recorded event tail and the failing event index.
        """
        if impact is not None:
            self.tail.append(
                AuditTrailEntry(
                    index=event_index,
                    time=impact.time,
                    category=category,
                    conn_id=impact.conn_id,
                    failed_links=tuple(impact.failed_links)
                    or ((impact.failed_link,) if impact.failed_link else ()),
                    dropped=tuple(impact.dropped),
                    activated=tuple(impact.activated),
                    activation_faults=tuple(impact.activation_faults),
                )
            )
        else:
            self.tail.append(
                AuditTrailEntry(
                    index=event_index,
                    time=float("nan"),
                    category=f"{category} (no-op)",
                    conn_id=None,
                    failed_links=(),
                    dropped=(),
                    activated=(),
                    activation_faults=(),
                )
            )
        due = self.policy.after_failure and category == "failure"
        if not due and self.policy.every_n_events:
            due = (event_index + 1) % self.policy.every_n_events == 0
        if due:
            self.check(event_index)

    def check(self, event_index: int) -> None:
        """Run the full invariant audit now (also callable directly)."""
        self.checks_run += 1
        try:
            self.manager.check_invariants()
        except ReproError as exc:
            tail = list(self.tail)
            trail_text = "\n  ".join(str(entry) for entry in tail) or "(empty)"
            raise AuditError(
                f"invariant audit failed after event {event_index}: {exc}\n"
                f"event trail (most recent last):\n  {trail_text}",
                trace_tail=tail,
                event_index=event_index,
            ) from exc
