#!/usr/bin/env python3
"""Video service with elastic QoS — the paper's motivating workload.

The paper's running example: "a video service requires at least
100 Kb/s for recognizable continuous images and 500 Kb/s for a
high-quality image."  This example runs a mixed population of video
clients over a campus-scale network:

* *standard* clients (utility 1) accept anything in 100..500 Kb/s;
* *premium* clients (utility 4) pay for priority on spare bandwidth;
* a handful of *telemetry* channels use single-value 50 Kb/s contracts
  (no elasticity) but demand a backup, mimicking the paper's
  reliability-critical command & control traffic.

It then compares the adaptation policies' effect on what each class of
viewer actually experiences.

Run:  python examples/video_service.py
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro import NetworkManager
from repro.elastic import EqualShare, MaxUtility, UtilityProportional
from repro.qos import ConnectionQoS, DependabilityQoS, ElasticQoS, single_value_qos
from repro.topology import TransitStubParams, transit_stub_network


def video_contract(premium: bool) -> ConnectionQoS:
    """An elastic video channel; premium viewers carry 4x utility."""
    return ConnectionQoS(
        performance=ElasticQoS(
            b_min=100.0,
            b_max=500.0,
            increment=50.0,
            utility=4.0 if premium else 1.0,
        ),
        dependability=DependabilityQoS(num_backups=1),
    )


def telemetry_contract() -> ConnectionQoS:
    """A fixed-rate, fault-tolerant telemetry channel."""
    return ConnectionQoS(
        performance=single_value_qos(50.0),
        dependability=DependabilityQoS(num_backups=1),
    )


def quality_label(bandwidth: float) -> str:
    """Map a video bitrate to a user-facing quality tier."""
    if bandwidth >= 450.0:
        return "HD"
    if bandwidth >= 250.0:
        return "SD+"
    if bandwidth >= 150.0:
        return "SD"
    return "minimum"


def main() -> None:
    rng = np.random.default_rng(11)
    # A campus-like transit-stub network: two backbones, edge stubs.
    net = transit_stub_network(
        TransitStubParams(
            transit_domains=2,
            transit_nodes_per_domain=4,
            stub_domains_per_transit_node=2,
            stub_nodes_per_domain=5,
        ),
        capacity=10_000.0,
        rng=rng,
    )
    print(f"campus network: {net.num_nodes} nodes, {net.num_links} links")

    # One fixed request sequence so the policy comparison is apples to apples.
    pair_rng = np.random.default_rng(5)
    nodes = np.array(net.nodes())
    requests = []
    for i in range(260):
        src, dst = pair_rng.choice(nodes, size=2, replace=False)
        if i % 13 == 0:
            qos = telemetry_contract()
            kind = "telemetry"
        else:
            premium = i % 3 == 0
            qos = video_contract(premium)
            kind = "premium" if premium else "standard"
        requests.append((int(src), int(dst), qos, kind))

    for policy in (EqualShare(), UtilityProportional(), MaxUtility()):
        manager = NetworkManager(net, policy=policy)
        kinds = {}
        for src, dst, qos, kind in requests:
            conn, _ = manager.request_connection(src, dst, qos)
            if conn is not None:
                kinds[conn.conn_id] = kind

        by_kind = defaultdict(list)
        for cid, kind in kinds.items():
            if cid in manager.connections:
                by_kind[kind].append(manager.connections[cid].bandwidth)

        print(f"\npolicy: {policy.name}")
        print(f"  admitted {manager.stats.accepted}/{manager.stats.requests} "
              f"(rejected: {manager.stats.rejected_no_primary} no-route, "
              f"{manager.stats.rejected_no_backup} no-backup)")
        for kind in ("premium", "standard", "telemetry"):
            rates = by_kind.get(kind, [])
            if not rates:
                continue
            mean = float(np.mean(rates))
            print(f"  {kind:9s}: n={len(rates):3d}  avg {mean:5.0f} Kb/s  "
                  f"typical quality: {quality_label(mean)}")

    print(
        "\nNote how max-utility lets premium viewers monopolise spare "
        "bandwidth (the behaviour §2.2 of the paper warns about), while "
        "the coefficient scheme shares it proportionally."
    )


if __name__ == "__main__":
    main()
