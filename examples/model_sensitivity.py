#!/usr/bin/env python3
"""Sensitivity of the Markov model — trusting measured parameters.

The chain's inputs (Pf, Ps, λ, μ, γ) are *estimated* from simulation and
therefore noisy.  Before using the model for planning, an operator
should know which knobs the prediction actually hinges on.  This example:

1. measures parameters from one simulation run;
2. prints the local elasticities of the predicted average bandwidth
   with respect to each scalar parameter;
3. sweeps the two chaining probabilities to show the model's global
   behaviour (more direct chaining -> downward pressure, more indirect
   chaining -> upward pressure);
4. records an event trace and audits it with the independent verifier.

Run:  python examples/model_sensitivity.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ElasticQoSSimulator,
    SimulationConfig,
    paper_connection_qos,
    paper_random_network,
)
from repro.analysis import render_table
from repro.markov import local_sensitivities, sweep_parameter
from repro.sim import verify_trace


def main() -> None:
    rng = np.random.default_rng(17)
    net = paper_random_network(10_000.0, rng, n=50, target_edges=110)
    qos = paper_connection_qos()

    config = SimulationConfig(
        qos=qos,
        offered_connections=500,
        warmup_events=200,
        measure_events=1200,
        record_trace=True,
    )
    result = ElasticQoSSimulator(net, config, seed=2).run()
    params = result.params
    print(f"measured at 500 connections: Pf={params.pf:.3f}, Ps={params.ps:.3f}, "
          f"sim avg {result.average_bandwidth:.1f} Kb/s")

    print("\nlocal elasticities of the model's average bandwidth")
    print("(+1.0 means a 1% parameter increase raises bandwidth ~1%):")
    sensitivities = local_sensitivities(qos.performance, params)
    print(
        render_table(
            ["parameter", "base value", "elasticity"],
            [
                [s.parameter, s.base_value, s.elasticity]
                for s in sensitivities.values()
            ],
            precision=4,
        )
    )

    print("\nsweep: direct-chaining probability Pf")
    pf_points = sweep_parameter(
        qos.performance, params, "pf", [0.05, 0.10, 0.20, 0.40]
    )
    print(render_table(["Pf", "model avg Kb/s"], [[v, bw] for v, bw in pf_points]))

    print("\nsweep: indirect-chaining probability Ps")
    ps_points = sweep_parameter(
        qos.performance, params, "ps", [0.1, 0.2, 0.4, 0.55]
    )
    print(render_table(["Ps", "model avg Kb/s"], [[v, bw] for v, bw in ps_points]))

    print("\ntrace audit:")
    assert result.trace is not None
    verify_trace(result.trace, qos.performance.num_levels)
    summary = result.trace.summary()
    print(f"  {summary.events} events verified "
          f"({summary.arrivals} arrivals, {summary.terminations} terminations, "
          f"{summary.level_increases} raises, {summary.level_decreases} drops) — "
          f"population accounting and level bounds all consistent")


if __name__ == "__main__":
    main()
