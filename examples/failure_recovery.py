#!/usr/bin/env python3
"""Failure recovery: backup channels, multiplexing and retreat in action.

Walks through the paper's dependability machinery on a ring network
(where primary and backup arcs are easy to see):

1. establish several DR-connections and show how their backups are
   *multiplexed* — overbooked onto shared reservations because no single
   link failure activates them together;
2. fail a link and watch the affected backup activate while primaries
   sharing the backup's links *retreat* to their minimum bandwidth;
3. fail a second link to demonstrate the scheme's limit: multiplexed
   reservations guarantee recovery from a single failure, so a second,
   near-simultaneous failure may drop a connection.

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

from repro import NetworkManager, paper_connection_qos
from repro.baselines import multiplexing_savings
from repro.channels import ConnectionState
from repro.topology import ring_network


def show_connections(manager: NetworkManager) -> None:
    for cid in manager.live_connection_ids():
        conn = manager.connections[cid]
        route = "backup" if conn.on_backup else "primary"
        print(
            f"  conn {cid}: {conn.source}->{conn.destination}  "
            f"{conn.bandwidth:4.0f} Kb/s on {route} route, state {conn.state.value}"
        )


def main() -> None:
    net = ring_network(8, capacity=1_000.0)
    qos = paper_connection_qos()
    manager = NetworkManager(net)

    print("ring of 8 nodes, 1 Mb/s links; contract:", qos.describe())

    print("\n--- establish four DR-connections around the ring ---")
    for src, dst in ((0, 2), (2, 4), (4, 6), (6, 0)):
        conn, _ = manager.request_connection(src, dst, qos)
        assert conn is not None
        print(f"  {src}->{dst}: primary {conn.primary_path}, backup {conn.backup_path}")

    savings = multiplexing_savings(manager)
    print("\nbackup multiplexing:")
    print(f"  naive per-backup reservation: {savings['naive_reservation']:.0f} Kb/s")
    print(f"  multiplexed reservation:      {savings['multiplexed_reservation']:.0f} Kb/s")
    print(f"  overbooking saves {savings['savings_ratio']:.0%}")

    print("\n--- state before any failure ---")
    show_connections(manager)
    print(f"  average bandwidth: {manager.average_live_bandwidth():.0f} Kb/s")

    print("\n--- fail link (0, 1): conn 0's primary breaks ---")
    impact = manager.fail_link((0, 1))
    print(f"  activated backups: {impact.activated}")
    print(f"  connections dropped: {impact.dropped}")
    retreats = {cid: f"{b}->{a}" for cid, (b, a) in impact.direct.items() if b != a}
    print(f"  level changes of other channels (retreat + refill): {retreats}")
    show_connections(manager)

    print("\n--- fail link (4, 5): a second failure tests the limit ---")
    impact = manager.fail_link((4, 5))
    print(f"  activated backups: {impact.activated}")
    print(f"  connections dropped: {impact.dropped}")
    print(f"  backups lost (now unprotected): {impact.lost_backup}")
    show_connections(manager)

    print("\n--- repair both links ---")
    manager.repair_link((0, 1))
    manager.repair_link((4, 5))
    print("  repaired; existing connections stay on their current routes "
          "(the scheme does not fail back), but new requests may use them:")
    conn, _ = manager.request_connection(0, 1, qos)
    print(f"  new 0->1 connection routed over {conn.primary_path}")

    stats = manager.stats
    print(
        f"\nlifetime stats: {stats.accepted} accepted, "
        f"{stats.backups_activated} backups activated, "
        f"{stats.connections_dropped} dropped, {stats.backups_lost} backups lost"
    )


if __name__ == "__main__":
    main()
