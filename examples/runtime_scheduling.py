#!/usr/bin/env python3
"""Run-time message scheduling: reservations become delivered service.

The paper's two-phase channel model (§2.1.1): the establishment phase
reserves bandwidth (everything the other examples show); the *run-time
message scheduling* phase must then actually deliver it on every link.
This example connects the two:

1. establish three DR-connections with elastic QoS on a small network;
2. take the bandwidth levels the elastic manager granted on one shared
   link and configure a weighted-fair packet scheduler with exactly
   those rates;
3. replay CBR and bursty sources — including a misbehaving one — and
   verify each conforming channel receives its reserved rate;
4. attach a k-out-of-M interval regulator (the paper's second elastic
   model) to the misbehaving channel and watch overload being shed
   without breaking the regulator's floor.

Run:  python examples/runtime_scheduling.py
"""

from __future__ import annotations

import numpy as np

from repro import NetworkManager, paper_connection_qos
from repro.qos.interval import IntervalQoS, IntervalRegulator
from repro.runtime import CbrSource, LinkSimulation, OnOffSource
from repro.topology import dumbbell_network


def main() -> None:
    # ------------------------------------------------------------------
    # Phase 1: establishment (what the rest of the library does).
    # ------------------------------------------------------------------
    net = dumbbell_network(3, capacity=1000.0, bottleneck_capacity=800.0)
    qos = paper_connection_qos()
    manager = NetworkManager(net)
    conns = []
    for src, dst in ((1, 5), (2, 6), (3, 7)):
        conn, _ = manager.request_connection(src, dst, qos)
        assert conn is not None
        conns.append(conn)
    print("established three DR-connections over the shared bottleneck:")
    for conn in conns:
        print(f"  conn {conn.conn_id}: level {conn.level} -> "
              f"{conn.bandwidth:.0f} Kb/s reserved")
    total = sum(c.bandwidth for c in conns)
    print(f"  total on the 800 Kb/s bottleneck: {total:.0f} Kb/s")

    # ------------------------------------------------------------------
    # Phase 2: run-time scheduling on the bottleneck link.
    # ------------------------------------------------------------------
    print("\nreplaying traffic through the bottleneck's fair scheduler:")
    sim = LinkSimulation(capacity=800.0)
    rng = np.random.default_rng(4)
    horizon = 30.0
    # conn 0: a conforming CBR stream at its reserved rate;
    sim.add_channel(
        conns[0].conn_id, conns[0].bandwidth,
        CbrSource(conns[0].conn_id, conns[0].bandwidth),
    )
    # conn 1: a bursty on/off source averaging under its reservation;
    sim.add_channel(
        conns[1].conn_id, conns[1].bandwidth,
        OnOffSource(conns[1].conn_id, peak_rate=2 * conns[1].bandwidth,
                    mean_on=0.5, mean_off=0.5, rng=rng),
    )
    # conn 2: a GREEDY source at 3x its reservation.
    sim.add_channel(
        conns[2].conn_id, conns[2].bandwidth,
        CbrSource(conns[2].conn_id, 3 * conns[2].bandwidth),
    )
    report = sim.run(horizon)
    for conn in conns:
        stats = report.stats[conn.conn_id]
        kind = {0: "CBR @ reservation", 1: "bursty (avg < rsv)", 2: "greedy 3x"}[conns.index(conn)]
        print(f"  conn {conn.conn_id} ({kind:18s}): reserved {conn.bandwidth:3.0f}, "
              f"delivered {report.throughput(conn.conn_id):6.1f} Kb/s, "
              f"mean delay {1000 * (stats.mean_delay or 0):6.1f} ms")
    print("-> conforming channels get their reservations; the greedy one "
          "only absorbs what is spare, and pays for its own backlog in delay")

    # ------------------------------------------------------------------
    # Interval QoS: shed the greedy channel's overload gracefully.
    # ------------------------------------------------------------------
    print("\nsame replay with a 1-out-of-3 interval regulator on the greedy channel:")
    sim2 = LinkSimulation(capacity=800.0)
    sim2.add_channel(
        conns[0].conn_id, conns[0].bandwidth,
        CbrSource(conns[0].conn_id, conns[0].bandwidth),
    )
    sim2.add_channel(
        conns[1].conn_id, conns[1].bandwidth,
        OnOffSource(conns[1].conn_id, peak_rate=2 * conns[1].bandwidth,
                    mean_on=0.5, mean_off=0.5, rng=np.random.default_rng(4)),
    )
    regulator = IntervalRegulator(IntervalQoS(k=1, m=3))
    sim2.add_channel(
        conns[2].conn_id, conns[2].bandwidth,
        CbrSource(conns[2].conn_id, 3 * conns[2].bandwidth),
        regulator=regulator,
    )
    report2 = sim2.run(horizon)
    greedy = report2.stats[conns[2].conn_id]
    regulator.verify_guarantee()
    print(f"  greedy channel: offered {greedy.offered_packets} packets, "
          f"dropped {greedy.dropped_packets} ({greedy.loss_ratio:.0%}), "
          f"delivered {report2.throughput(conns[2].conn_id):.1f} Kb/s")
    print(f"  regulator audit over {regulator.stats.windows_completed} windows: "
          f"every window met its k-of-M floor")
    print(f"  conforming channel's mean delay improved: "
          f"{1000 * report.stats[conns[0].conn_id].mean_delay:.1f} ms -> "
          f"{1000 * report2.stats[conns[0].conn_id].mean_delay:.1f} ms")


if __name__ == "__main__":
    main()
