#!/usr/bin/env python3
"""Analytic model vs. detailed simulation — the paper's core validation.

Reproduces the heart of Section 4 at laptop scale: for a sweep of
offered loads, run the detailed simulator, estimate the Markov-chain
parameters (Pf, Ps, A, B, T) from its event stream, solve the chain
with each of the three steady-state methods, and compare:

* the average reserved bandwidth (the paper's headline metric);
* the whole stationary level distribution π (state-by-state);
* the ideal-bandwidth formula of Figure 2.

Run:  python examples/analytic_vs_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ElasticQoSMarkovModel,
    ElasticQoSSimulator,
    SimulationConfig,
    ideal_average_bandwidth,
    paper_connection_qos,
    paper_random_network,
)
from repro.analysis import render_table
from repro.topology import average_shortest_path_hops


def main() -> None:
    rng = np.random.default_rng(21)
    capacity = 10_000.0
    net = paper_random_network(capacity, rng, n=50, target_edges=110)
    avghop = average_shortest_path_hops(net)
    qos = paper_connection_qos()
    print(
        f"network: {net.num_nodes} nodes / {net.num_links} links, "
        f"avg hops {avghop:.2f};  contract: {qos.describe()}"
    )

    rows = []
    last_result = None
    for offered in (100, 250, 500, 800):
        config = SimulationConfig(
            qos=qos,
            offered_connections=offered,
            warmup_events=200,
            measure_events=1500,
        )
        result = ElasticQoSSimulator(net, config, seed=offered).run()
        model = ElasticQoSMarkovModel(qos.performance, result.params)
        solution = model.solve()
        ideal = ideal_average_bandwidth(capacity, net.num_links, offered, avghop)
        rows.append(
            [
                offered,
                result.average_bandwidth,
                solution.average_bandwidth,
                ideal,
                result.params.pf,
                result.params.ps,
            ]
        )
        last_result = (offered, result, model)

    print()
    print(
        render_table(
            ["offered", "sim Kb/s", "model Kb/s", "ideal Kb/s", "Pf", "Ps"],
            rows,
            precision=3,
            title="average bandwidth: simulation vs. Markov model vs. ideal",
        )
    )

    offered, result, model = last_result
    solution = model.solve()
    print(f"\nstationary distribution at {offered} offered connections:")
    print(
        render_table(
            ["level", "bandwidth", "sim π", "model π"],
            [
                [
                    i,
                    qos.performance.level_bandwidth(i),
                    float(result.level_occupancy[i]),
                    float(solution.pi[i]),
                ]
                for i in range(qos.performance.num_levels)
            ],
            precision=4,
        )
    )
    tv = 0.5 * float(np.abs(solution.pi - result.level_occupancy).sum())
    print(f"total-variation distance sim vs model: {tv:.3f}")

    print("\nsolver cross-check on the same chain:")
    for method in ("direct", "lstsq", "power"):
        print(f"  {method:7s}: {model.average_bandwidth(method=method):.4f} Kb/s")

    print("\ntransient behaviour of a freshly admitted channel:")
    for t in (0.0, 500.0, 2000.0, 10000.0, 100000.0):
        bw = model.transient_average_bandwidth(t)
        print(f"  t={t:>8.0f}: expected bandwidth {bw:6.1f} Kb/s")


if __name__ == "__main__":
    main()
