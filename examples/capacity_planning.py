#!/usr/bin/env python3
"""Capacity planning with the analytic model — what the paper enables.

The paper argues its model "is essential for the analysis of network
service behavior and the future planning of the network".  This example
plays a network operator asking concrete planning questions:

1. How many DR-connections can my network carry before the average
   video quality drops below SD (250 Kb/s)?
2. How much does the dependability guarantee (backup reservations)
   cost me in admitted connections?
3. If the link failure rate grows (ageing plant), when does it start
   hurting the bandwidth my customers see?

Questions 1 and 3 are answered with the Markov model (fast sweeps on
measured parameters), question 2 with the comparison harness.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ElasticQoSMarkovModel,
    ElasticQoSSimulator,
    SimulationConfig,
    paper_connection_qos,
    paper_random_network,
)
from repro.analysis import render_table
from repro.baselines import compare_schemes, single_value_contract


def main() -> None:
    rng = np.random.default_rng(3)
    capacity = 10_000.0
    net = paper_random_network(capacity, rng, n=50, target_edges=110)
    qos = paper_connection_qos()
    print(f"planning for: {net.num_nodes} nodes, {net.num_links} links, "
          f"10 Mb/s per link")

    # ------------------------------------------------------------------
    # Q1: load threshold for SD-quality video.
    # ------------------------------------------------------------------
    print("\nQ1. load vs. average quality (simulation + model)")
    rows = []
    threshold = None
    for offered in (200, 400, 600, 800, 1000):
        config = SimulationConfig(
            qos=qos, offered_connections=offered,
            warmup_events=150, measure_events=900,
        )
        result = ElasticQoSSimulator(net, config, seed=offered).run()
        model_bw = ElasticQoSMarkovModel(
            qos.performance, result.params
        ).average_bandwidth()
        rows.append([offered, result.average_bandwidth, model_bw])
        if threshold is None and result.average_bandwidth < 250.0:
            threshold = offered
    print(render_table(["offered", "sim Kb/s", "model Kb/s"], rows))
    if threshold:
        print(f"-> average quality drops below SD around {threshold} connections")
    else:
        print("-> SD quality holds across the tested range")

    # ------------------------------------------------------------------
    # Q2: what does dependability cost?
    # ------------------------------------------------------------------
    print("\nQ2. the price of the backup guarantee (same 1500 requests)")
    outcomes = compare_schemes(
        net,
        [
            ("with backups", paper_connection_qos()),
            ("no backups", paper_connection_qos(num_backups=0)),
            ("single-value, backups", single_value_contract(100.0)),
        ],
        offered=1500,
        seed=9,
    )
    print(
        render_table(
            ["scheme", "accepted", "avg bw Kb/s", "utilization"],
            [
                [o.name, o.accepted, o.average_bandwidth, o.network_utilization]
                for o in outcomes
            ],
            precision=3,
        )
    )
    protected, unprotected = outcomes[0], outcomes[1]
    cost = unprotected.accepted - protected.accepted
    print(f"-> fault tolerance costs {cost} admitted connections "
          f"({cost / max(1, unprotected.accepted):.0%} of capacity), while "
          f"elasticity keeps the survivors at "
          f"{protected.average_bandwidth:.0f} Kb/s on average")

    # ------------------------------------------------------------------
    # Q3: failure-rate sweep on the measured chain (Figure 4 style).
    # ------------------------------------------------------------------
    print("\nQ3. ageing plant: failure-rate sweep on the measured chain")
    config = SimulationConfig(
        qos=qos, offered_connections=600, warmup_events=150, measure_events=900
    )
    result = ElasticQoSSimulator(net, config, seed=42).run()
    rows = []
    for gamma in (1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2):
        model = ElasticQoSMarkovModel(
            qos.performance, result.params.with_failure_rate(gamma)
        )
        rows.append([f"{gamma:.0e}", model.average_bandwidth()])
    print(render_table(["network failure rate γ", "model avg Kb/s"], rows))
    lam = result.params.arrival_rate
    print(f"-> with request churn at λ={lam}, failures are invisible while "
          f"γ << λ and bite once γ approaches λ — exactly Figure 4's story")


if __name__ == "__main__":
    main()
