#!/usr/bin/env python3
"""Quickstart: one DR-connection with elastic QoS, end to end.

Builds a small random network, establishes a dependable real-time
connection (primary + link-disjoint backup), shows elastic bandwidth in
action (reclamation on arrival, recovery on termination), injects a
link failure to trigger backup activation, and finally runs the paper's
Markov model on simulated parameters.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ElasticQoSMarkovModel,
    ElasticQoSSimulator,
    NetworkManager,
    SimulationConfig,
    paper_connection_qos,
    paper_random_network,
)
from repro.topology import average_degree, average_shortest_path_hops, diameter


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    rng = np.random.default_rng(7)
    capacity = 10_000.0  # 10 Mb/s per link, as in the paper
    net = paper_random_network(capacity, rng, n=40, target_edges=90)
    banner("Topology")
    print(
        f"Waxman random network: {net.num_nodes} nodes, {net.num_links} links, "
        f"avg degree {average_degree(net):.2f}, diameter {diameter(net)}, "
        f"avg hops {average_shortest_path_hops(net):.2f}"
    )

    qos = paper_connection_qos()  # 100..500 Kb/s elastic, Δ=50, one backup
    manager = NetworkManager(net)

    banner("Establish a DR-connection")
    conn, _ = manager.request_connection(0, net.num_nodes - 1, qos)
    assert conn is not None, "establishment failed on an empty network?"
    print(f"contract: {conn.qos.describe()}")
    print(f"primary route: {conn.primary_path}")
    print(f"backup  route: {conn.backup_path} (overlap {conn.backup_overlap})")
    print(f"bandwidth now: {conn.bandwidth:.0f} Kb/s (level {conn.level})")
    print("-> alone in the network, the connection is pumped to its maximum")

    banner("Elasticity under contention")
    rng_pairs = np.random.default_rng(1)
    nodes = np.array(net.nodes())
    others = []
    for _ in range(60):
        src, dst = rng_pairs.choice(nodes, size=2, replace=False)
        other, _ = manager.request_connection(int(src), int(dst), qos)
        if other is not None:
            others.append(other)
    print(f"admitted {len(others)} more connections")
    print(f"our bandwidth now: {conn.bandwidth:.0f} Kb/s (level {conn.level})")
    print(f"network-wide average: {manager.average_live_bandwidth():.0f} Kb/s")

    banner("Failure recovery")
    victim_link = conn.primary_links[0]
    impact = manager.fail_link(victim_link)
    print(f"failed link {victim_link}: activated={impact.activated}, "
          f"dropped={impact.dropped}, lost backups={impact.lost_backup}")
    print(f"our connection state: {conn.state.value}, "
          f"bandwidth {conn.bandwidth:.0f} Kb/s on the backup route")

    banner("The paper's Markov model")
    config = SimulationConfig(
        qos=qos, offered_connections=150, warmup_events=100, measure_events=600
    )
    result = ElasticQoSSimulator(net, config, seed=3).run()
    model = ElasticQoSMarkovModel(qos.performance, result.params)
    print(model.describe())
    print(f"\nsimulation measured: {result.average_bandwidth:.1f} Kb/s "
          f"(model vs sim error "
          f"{abs(model.average_bandwidth() - result.average_bandwidth) / result.average_bandwidth:.1%})")


if __name__ == "__main__":
    main()
