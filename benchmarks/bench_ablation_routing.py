"""Ablation A6: route-selection engines — centralized Dijkstra vs.
bounded flooding.

Section 2.1.1 of the paper discusses both: the centralized approach
"can select an 'optimal' route" but is a bottleneck; distributed
bounded flooding finds routes quickly "but it induces a large traffic
overhead".  This ablation offers the same request sequence to both
engines and compares acceptance, bandwidth and path quality, then
measures the flooding message overhead directly.

Each engine leg rebuilds its own topology from a picklable
:class:`TopologySpec` and fans out over
:func:`repro.parallel.parallel_map` when ``REPRO_JOBS`` > 1.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import archive, bench_jobs
from repro.analysis.experiments import paper_connection_qos
from repro.analysis.report import render_table
from repro.channels.manager import NetworkManager
from repro.parallel import TopologySpec, parallel_map
from repro.routing.flooding import bounded_flood
from repro.units import PAPER_B_MIN, PAPER_LINK_CAPACITY


def _run_engine_leg(spec):
    """One routing engine over the shared request sequence (picklable)."""
    engine, topology, offered, pair_seed = spec
    net = topology.build()
    pair_rng = np.random.default_rng(pair_seed)
    nodes = np.array(net.nodes())
    requests = [tuple(map(int, pair_rng.choice(nodes, size=2, replace=False)))
                for _ in range(offered)]
    qos = paper_connection_qos()
    manager = NetworkManager(net, routing=engine)
    for src, dst in requests:
        manager.request_connection(src, dst, qos)
    hops = [len(c.primary_links) for c in manager.connections.values()]
    return [
        engine,
        manager.stats.accepted,
        manager.stats.acceptance_ratio,
        manager.average_live_bandwidth(),
        float(np.mean(hops)) if hops else 0.0,
    ]


def test_routing_ablation(benchmark, scale):
    topology = TopologySpec(
        "waxman",
        PAPER_LINK_CAPACITY,
        scale.settings.seed,
        nodes=scale.nodes,
        edges=scale.edges,
    )
    offered = scale.figure2_counts[len(scale.figure2_counts) // 2]
    pair_seed = scale.settings.seed + 5
    specs = [
        (engine, topology, offered, pair_seed) for engine in ("dijkstra", "flooding")
    ]

    rows = benchmark.pedantic(
        lambda: parallel_map(_run_engine_leg, specs, jobs=bench_jobs()),
        rounds=1,
        iterations=1,
    )

    # Message overhead of flooding on the raw topology, averaged over a
    # sample of random pairs (Dijkstra's cost is one link-state lookup
    # per edge, i.e. "free" in message terms for the central manager).
    net = topology.build()
    nodes = np.array(net.nodes())
    sample_rng = np.random.default_rng(scale.settings.seed + 6)
    messages = []
    for _ in range(30):
        src, dst = map(int, sample_rng.choice(nodes, size=2, replace=False))
        flood = bounded_flood(
            net, src, dst, PAPER_B_MIN, lambda link: PAPER_LINK_CAPACITY, hop_bound=12
        )
        messages.append(flood.messages_sent)

    table = render_table(
        ["engine", "accepted", "acceptance", "avg bw Kb/s", "avg primary hops"],
        rows,
        precision=3,
        title=f"Ablation A6 — routing engine ({offered} offered)",
    )
    overhead = (
        f"bounded flooding overhead: mean {np.mean(messages):.0f} messages/request "
        f"(max {max(messages)}) vs. 0 for the centralized engine"
    )
    archive("ablation_routing", table + "\n" + overhead)

    dijkstra, flooding = rows
    # Both engines find routes; acceptance should be in the same ballpark.
    assert flooding[1] > 0.7 * dijkstra[1]
    # Flooding confirms the first-arriving (i.e. shortest) copies, so its
    # average path length stays close to Dijkstra's.
    assert flooding[4] < dijkstra[4] + 1.5
    # And it is, as the paper says, message-hungry.
    assert np.mean(messages) > net.num_links / 4
