"""Ablation A1: elastic QoS vs. the single-value QoS baselines.

Quantifies the paper's motivation (§1): with single-value QoS a client
either requests the minimum ("bare-bone service even when there are
plenty of resources available") or the maximum (risking rejection and
"blocking of future real-time channel requests").  Elastic QoS should
match the minimum scheme's acceptance while delivering far more
bandwidth, and beat the maximum scheme's acceptance outright.

Each scheme is an independent, picklable leg (shared topology and
request sequence rebuilt from the same spec/seed in every worker) and
fans out over :func:`repro.parallel.parallel_map` when ``REPRO_JOBS`` > 1.
"""

from __future__ import annotations

from benchmarks.conftest import archive, bench_jobs
from repro.analysis.experiments import paper_connection_qos
from repro.analysis.report import render_table
from repro.baselines.compare import compare_schemes
from repro.baselines.contracts import single_value_contract
from repro.parallel import TopologySpec, parallel_map
from repro.units import PAPER_B_MAX, PAPER_B_MIN, PAPER_LINK_CAPACITY


def _run_scheme_leg(spec):
    """One QoS scheme over the shared request sequence (picklable)."""
    name, qos, topology, offered, seed = spec
    net = topology.build()
    return compare_schemes(net, [(name, qos)], offered=offered, seed=seed)[0]


def test_elastic_vs_single_value(benchmark, scale):
    topology = TopologySpec(
        "waxman",
        PAPER_LINK_CAPACITY,
        scale.settings.seed,
        nodes=scale.nodes,
        edges=scale.edges,
    )
    offered = max(scale.figure2_counts) // 2
    schemes = [
        ("elastic 100-500", paper_connection_qos()),
        ("single-value 100", single_value_contract(PAPER_B_MIN)),
        ("single-value 500", single_value_contract(PAPER_B_MAX)),
    ]
    specs = [
        (name, qos, topology, offered, scale.settings.seed) for name, qos in schemes
    ]
    outcomes = benchmark.pedantic(
        lambda: parallel_map(_run_scheme_leg, specs, jobs=bench_jobs()),
        rounds=1,
        iterations=1,
    )
    table = render_table(
        ["scheme", "offered", "accepted", "acceptance", "avg bw Kb/s", "net util"],
        [
            [
                o.name,
                o.offered,
                o.accepted,
                o.acceptance_ratio,
                o.average_bandwidth,
                o.network_utilization,
            ]
            for o in outcomes
        ],
        precision=3,
        title=f"Ablation A1 — elastic vs. single-value QoS ({offered} offered)",
    )
    archive("ablation_elastic_vs_single", table)

    elastic, single_min, single_max = outcomes
    # Elastic admits as many as the minimum scheme (identical admission
    # footprint: both commit only b_min per link)...
    assert elastic.accepted == single_min.accepted
    # ...but delivers strictly more bandwidth whenever capacity is spare.
    assert elastic.average_bandwidth > single_min.average_bandwidth
    # The greedy maximum scheme admits fewer connections.
    assert single_max.accepted < single_min.accepted
