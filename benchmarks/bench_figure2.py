"""Figure 2: average bandwidth vs. number of DR-connections.

Regenerates the paper's Figure 2 series: the simulation curve, the
9-state Markov-chain curve, and the ideal-bandwidth dotted line, as the
offered DR-connection count grows.  The paper's shape: all curves fall
with load; sim and model stay close; the ideal line starts far above
(light load saturates at B_max) and crosses below as overload sets in.
"""

from __future__ import annotations

from benchmarks.conftest import archive, archive_timings
from repro.analysis.experiments import run_figure2
from repro.analysis.report import relative_error, render_table


def test_figure2(benchmark, scale, jobs):
    sink = []
    result = benchmark.pedantic(
        lambda: run_figure2(
            scale.figure2_counts,
            nodes=scale.nodes,
            edges=scale.edges,
            settings=scale.settings,
            jobs=jobs,
            timing_sink=sink,
        ),
        rounds=1,
        iterations=1,
    )
    archive_timings("figure2", sink)
    rows = [
        [
            row.offered,
            row.population,
            row.simulated,
            row.analytic,
            row.ideal,
            100.0 * relative_error(row.analytic, row.simulated),
        ]
        for row in result.rows
    ]
    table = render_table(
        ["offered", "population", "sim Kb/s", "model Kb/s", "ideal Kb/s", "model err %"],
        rows,
        title=(
            f"Figure 2 — avg bandwidth vs. #DR-connections "
            f"({result.nodes} nodes, {result.edges} edges, "
            f"avg hops {result.average_hops:.2f})"
        ),
    )
    archive("figure2", table)

    # Shape assertions (the paper's qualitative claims).
    sims = [row.simulated for row in result.rows]
    assert all(a >= b - 1e-6 for a, b in zip(sims, sims[1:])), "sim curve must fall"
    for row in result.rows:
        assert 100.0 - 1e-6 <= row.simulated <= 500.0 + 1e-6
        # Model tracks simulation; the paper itself reports a visible
        # sim/model gap (its Figure 2) attributed to leaf-node asymmetry,
        # so allow 25%.
        assert relative_error(row.analytic, row.simulated) < 0.25
