"""Benchmark regression gate over the ``BENCH_core_ops.json`` artifact.

Deterministic CI check: no benchmarks are (re)run here.  The artifact is
the record; this script verifies that its **latest run** does not
regress more than a tolerance against its baseline, and fails the build
if it does.  Keeping the gate a pure JSON diff makes it flake-free on
shared CI machines — the noisy part (recording) happens once, on the
developer's machine, and is reviewed with the PR like any other diff.

Baseline selection.  Runs carry a ``core`` field (``array`` | ``object``
— runs recorded before the field existed are the historical ``object``
core).  The baseline for the latest run is the nearest *earlier* run
with the same core: comparing the SoA core's first recording against an
object-core run would conflate an architecture swap with a regression.
A run with no same-core predecessor becomes the lineage's baseline and
passes vacuously.

Environment normalization.  Each run records ``calib_us`` — the median
of a fixed numpy workload on the recording machine (see
``bench_to_json.machine_calibration``).  When both runs carry it, the
baseline's medians are scaled by the calibration ratio before the
tolerance is applied, so a slower (or thermally throttled) recording
machine is not misread as a code regression.  Runs predating the field
compare unscaled.

The canary resolves machine-*class* differences (different silicon,
halved clocks), not same-machine jitter: on a contended single-core
recorder its reading swings up to ~1.3× between otherwise-quiet
recordings, which is *more* variance than the tracked medians
themselves show.  Applying such a ratio would inject noise rather than
remove it, so ratios inside the dead band
(:data:`CALIBRATION_DEADBAND`) are treated as 1.0 — within the band
the regression tolerance is the instrument; beyond it the machines are
genuinely different and scaling engages.

Cross-core supremacy.  Besides the same-core regression gate, the check
asserts the **array** core's latest run beats (or ties) the **object**
core's latest run on the admission-path benchmarks
(:data:`CROSS_CORE_BENCHMARKS`) after calibration scaling — the SoA
core exists to be faster, and this pins that claim in CI.  Skipped
(with a notice) while the artifact lacks a run of either core.

Exit status: 0 when every tracked median is within tolerance, 1
otherwise (with a per-metric report either way).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ARTIFACT = REPO_ROOT / "BENCH_core_ops.json"

#: Allowed fractional regression of any tracked median (15%).
DEFAULT_TOLERANCE = 0.15

#: The historical core of runs recorded before the ``core`` field.
_LEGACY_CORE = "object"

#: Benchmarks where the array core must not lose to the object core.
CROSS_CORE_BENCHMARKS = ("test_request_connection", "test_failure_and_repair")

#: Calibration ratios within ``[1/(1+x), 1+x]`` of 1.0 are canary
#: jitter, not a machine difference, and are not applied (see module
#: docstring).  0.30 is the observed quiet-window spread of the canary
#: on the project's single-core recorder.
CALIBRATION_DEADBAND = 0.30


def calibration_scale(cand_calib: Optional[float], base_calib: Optional[float]) -> float:
    """Machine factor to apply to the baseline's medians.

    1.0 when either side lacks a calibration or the ratio sits inside
    the dead band; the raw ratio otherwise.
    """
    if not cand_calib or not base_calib:
        return 1.0
    ratio = cand_calib / base_calib
    if 1.0 / (1.0 + CALIBRATION_DEADBAND) <= ratio <= 1.0 + CALIBRATION_DEADBAND:
        return 1.0
    return ratio


def load_runs(path: Path) -> list[dict]:
    artifact = json.loads(path.read_text())
    runs = artifact.get("runs", [])
    if not runs:
        raise SystemExit(f"{path}: artifact contains no runs")
    return runs


def run_core(run: dict) -> str:
    return run.get("core", _LEGACY_CORE)


def find_run(runs: list[dict], label: str) -> dict:
    for run in runs:
        if run.get("label") == label:
            return run
    raise SystemExit(f"no run labelled {label!r} in the artifact")


def baseline_for(runs: list[dict], candidate: dict) -> Optional[dict]:
    """Nearest earlier run with the candidate's core, or None."""
    core = run_core(candidate)
    index = runs.index(candidate)
    for run in reversed(runs[:index]):
        if run_core(run) == core:
            return run
    return None


def check(candidate: dict, baseline: dict, tolerance: float) -> int:
    """Compare tracked medians; return the number of regressions."""
    cand_calib = candidate.get("calib_us")
    base_calib = baseline.get("calib_us")
    scale = calibration_scale(cand_calib, base_calib)
    if cand_calib and base_calib:
        print(
            f"calibration: candidate {cand_calib} µs / baseline {base_calib} µs"
            f" -> machine factor {scale:.3f}"
            + (" (ratio within dead band)" if scale == 1.0 else "")
        )
    else:
        print("calibration: unavailable on one side; comparing unscaled")

    failures = 0
    shared = sorted(set(candidate["results"]) & set(baseline["results"]))
    if not shared:
        raise SystemExit("runs share no benchmarks; nothing to compare")
    for name in shared:
        cand_med = candidate["results"][name]["median_us"]
        base_med = baseline["results"][name]["median_us"]
        limit = base_med * scale * (1.0 + tolerance)
        ok = cand_med <= limit
        verdict = "ok" if ok else "REGRESSION"
        print(
            f"  {name}: {cand_med:.1f} µs vs baseline {base_med:.1f} µs"
            f" (limit {limit:.1f}) {verdict}"
        )
        if not ok:
            failures += 1
    return failures


def latest_run_for_core(runs: list[dict], core: str) -> Optional[dict]:
    """The most recent run recorded with ``core``, or None."""
    for run in reversed(runs):
        if run_core(run) == core:
            return run
    return None


def check_cross_core(runs: list[dict]) -> int:
    """Assert the array core beats the object core; return failures.

    Compares the latest run of each core on
    :data:`CROSS_CORE_BENCHMARKS` after calibration scaling.  The
    comparison is strict (no tolerance): the runs are recorded
    back-to-back on one machine, so a loss is a real loss.
    """
    array_run = latest_run_for_core(runs, "array")
    object_run = latest_run_for_core(runs, "object")
    if array_run is None or object_run is None:
        print("cross-core: artifact lacks a run of each core; skipping")
        return 0
    print(
        f"cross-core: array {array_run['label']!r} vs"
        f" object {object_run['label']!r}"
    )
    a_calib = array_run.get("calib_us")
    o_calib = object_run.get("calib_us")
    scale = calibration_scale(a_calib, o_calib)
    if a_calib and o_calib:
        print(
            f"  calibration: array {a_calib} µs / object {o_calib} µs"
            f" -> machine factor {scale:.3f}"
            + (" (ratio within dead band)" if scale == 1.0 else "")
        )
    failures = 0
    for name in CROSS_CORE_BENCHMARKS:
        a_result = array_run["results"].get(name)
        o_result = object_run["results"].get(name)
        if a_result is None or o_result is None:
            print(f"  {name}: missing from one run; skipping")
            continue
        a_med = a_result["median_us"]
        limit = o_result["median_us"] * scale
        ok = a_med <= limit
        verdict = "ok" if ok else "ARRAY SLOWER THAN OBJECT"
        print(f"  {name}: array {a_med:.1f} µs vs object {limit:.1f} µs {verdict}")
        if not ok:
            failures += 1
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifact", type=Path, default=DEFAULT_ARTIFACT,
        help=f"artifact path (default {DEFAULT_ARTIFACT})",
    )
    parser.add_argument(
        "--candidate", default=None,
        help="label of the run under test (default: the artifact's last run)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="label to compare against (default: nearest earlier same-core run)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"allowed fractional regression (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--no-cross-core", action="store_true",
        help="skip the array-beats-object supremacy check",
    )
    args = parser.parse_args(argv)

    runs = load_runs(args.artifact)
    candidate = find_run(runs, args.candidate) if args.candidate else runs[-1]
    if args.baseline:
        baseline = find_run(runs, args.baseline)
    else:
        baseline = baseline_for(runs, candidate)
    print(f"candidate: {candidate['label']} (core={run_core(candidate)})")
    if baseline is None:
        print(
            "no earlier run with this core: this recording becomes the"
            " lineage baseline; nothing to gate"
        )
        failures = 0
    else:
        print(f"baseline:  {baseline['label']} (core={run_core(baseline)})")
        failures = check(candidate, baseline, args.tolerance)
    if not args.no_cross_core:
        failures += check_cross_core(runs)
    if failures:
        print(f"FAILED: {failures} benchmark check(s) failed")
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
