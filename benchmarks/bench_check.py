"""Benchmark regression gate over the ``BENCH_core_ops.json`` artifact.

Deterministic CI check: no benchmarks are (re)run here.  The artifact is
the record; this script verifies that its **latest run** does not
regress more than a tolerance against its baseline, and fails the build
if it does.  Keeping the gate a pure JSON diff makes it flake-free on
shared CI machines — the noisy part (recording) happens once, on the
developer's machine, and is reviewed with the PR like any other diff.

Baseline selection.  Runs carry a ``core`` field (``array`` | ``object``
— runs recorded before the field existed are the historical ``object``
core).  The baseline for the latest run is the nearest *earlier* run
with the same core: comparing the SoA core's first recording against an
object-core run would conflate an architecture swap with a regression.
A run with no same-core predecessor becomes the lineage's baseline and
passes vacuously.

Environment normalization.  Each run records ``calib_us`` — the median
of a fixed numpy workload on the recording machine (see
``bench_to_json.machine_calibration``).  When both runs carry it, the
baseline's medians are scaled by the calibration ratio before the
tolerance is applied, so a slower (or thermally throttled) recording
machine is not misread as a code regression.  Runs predating the field
compare unscaled.

Exit status: 0 when every tracked median is within tolerance, 1
otherwise (with a per-metric report either way).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ARTIFACT = REPO_ROOT / "BENCH_core_ops.json"

#: Allowed fractional regression of any tracked median (15%).
DEFAULT_TOLERANCE = 0.15

#: The historical core of runs recorded before the ``core`` field.
_LEGACY_CORE = "object"


def load_runs(path: Path) -> list[dict]:
    artifact = json.loads(path.read_text())
    runs = artifact.get("runs", [])
    if not runs:
        raise SystemExit(f"{path}: artifact contains no runs")
    return runs


def run_core(run: dict) -> str:
    return run.get("core", _LEGACY_CORE)


def find_run(runs: list[dict], label: str) -> dict:
    for run in runs:
        if run.get("label") == label:
            return run
    raise SystemExit(f"no run labelled {label!r} in the artifact")


def baseline_for(runs: list[dict], candidate: dict) -> Optional[dict]:
    """Nearest earlier run with the candidate's core, or None."""
    core = run_core(candidate)
    index = runs.index(candidate)
    for run in reversed(runs[:index]):
        if run_core(run) == core:
            return run
    return None


def check(candidate: dict, baseline: dict, tolerance: float) -> int:
    """Compare tracked medians; return the number of regressions."""
    scale = 1.0
    cand_calib = candidate.get("calib_us")
    base_calib = baseline.get("calib_us")
    if cand_calib and base_calib:
        scale = cand_calib / base_calib
        print(
            f"calibration: candidate {cand_calib} µs / baseline {base_calib} µs"
            f" -> machine factor {scale:.3f}"
        )
    else:
        print("calibration: unavailable on one side; comparing unscaled")

    failures = 0
    shared = sorted(set(candidate["results"]) & set(baseline["results"]))
    if not shared:
        raise SystemExit("runs share no benchmarks; nothing to compare")
    for name in shared:
        cand_med = candidate["results"][name]["median_us"]
        base_med = baseline["results"][name]["median_us"]
        limit = base_med * scale * (1.0 + tolerance)
        ok = cand_med <= limit
        verdict = "ok" if ok else "REGRESSION"
        print(
            f"  {name}: {cand_med:.1f} µs vs baseline {base_med:.1f} µs"
            f" (limit {limit:.1f}) {verdict}"
        )
        if not ok:
            failures += 1
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifact", type=Path, default=DEFAULT_ARTIFACT,
        help=f"artifact path (default {DEFAULT_ARTIFACT})",
    )
    parser.add_argument(
        "--candidate", default=None,
        help="label of the run under test (default: the artifact's last run)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="label to compare against (default: nearest earlier same-core run)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"allowed fractional regression (default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)

    runs = load_runs(args.artifact)
    candidate = find_run(runs, args.candidate) if args.candidate else runs[-1]
    if args.baseline:
        baseline = find_run(runs, args.baseline)
    else:
        baseline = baseline_for(runs, candidate)
    print(f"candidate: {candidate['label']} (core={run_core(candidate)})")
    if baseline is None:
        print(
            "no earlier run with this core: this recording becomes the"
            " lineage baseline; nothing to gate"
        )
        return 0
    print(f"baseline:  {baseline['label']} (core={run_core(baseline)})")
    failures = check(candidate, baseline, args.tolerance)
    if failures:
        print(f"FAILED: {failures} benchmark(s) regressed > {args.tolerance:.0%}")
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
