"""Micro-benchmarks of the hot core operations.

These are the operations the end-to-end simulations hammer — connection
establishment (route + reclaim + reserve + redistribute), termination,
failure handling, chain solving, and parameter estimation per event.
They serve as performance regression guards: the localized
redistribution design (DESIGN.md §5) is what keeps thousand-connection
simulations tractable, and these numbers would shout if that property
regressed.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.experiments import paper_connection_qos
from repro.channels import make_manager
from repro.markov.model import ElasticQoSMarkovModel
from repro.markov.parameters import (
    MarkovParameters,
    uniform_downward_matrix,
    uniform_upward_matrix,
)
from repro.topology.waxman import paper_random_network
from repro.units import PAPER_LINK_CAPACITY


def loaded_manager(n_connections: int, seed: int = 11):
    """A manager pre-loaded with ``n_connections`` on a 60-node network."""
    rng = np.random.default_rng(seed)
    net = paper_random_network(PAPER_LINK_CAPACITY, rng, n=60, target_edges=130)
    # Defaults to the array core; REPRO_BENCH_CORE=object records the
    # object-core twin on the same machine (environment recalibration).
    manager = make_manager(net, core=os.environ.get("REPRO_BENCH_CORE", "array"))
    qos = paper_connection_qos()
    nodes = np.array(net.nodes())
    pair_rng = np.random.default_rng(seed + 1)
    while manager.num_live < n_connections:
        src, dst = pair_rng.choice(nodes, size=2, replace=False)
        manager.request_connection(int(src), int(dst), qos)
    return net, manager, qos, pair_rng, nodes


@pytest.fixture
def loaded():
    # Function-scoped: the failure/termination benchmarks mutate the
    # manager heavily, so each benchmark gets a fresh population.
    return loaded_manager(600)


def test_request_connection(benchmark, loaded):
    net, manager, qos, pair_rng, nodes = loaded

    def establish_and_remove():
        src, dst = pair_rng.choice(nodes, size=2, replace=False)
        conn, _ = manager.request_connection(int(src), int(dst), qos)
        if conn is not None:
            manager.terminate_connection(conn.conn_id)

    benchmark(establish_and_remove)


def test_failure_and_repair(benchmark, loaded):
    net, manager, qos, pair_rng, nodes = loaded
    links = net.link_ids()
    state = {"i": 0}

    def fail_and_repair():
        lid = links[state["i"] % len(links)]
        state["i"] += 1
        manager.fail_link(lid)
        manager.repair_link(lid)

    benchmark(fail_and_repair)


def test_average_bandwidth_query(benchmark, loaded):
    _net, manager, *_ = loaded
    result = benchmark(manager.average_live_bandwidth)
    assert 100.0 <= result <= 500.0 + 1e-6


def test_chain_solve(benchmark):
    from repro.qos.spec import ElasticQoS

    qos = ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0)
    params = MarkovParameters(
        num_levels=9,
        pf=0.2,
        ps=0.4,
        a=uniform_downward_matrix(9),
        b=uniform_upward_matrix(9),
        t=uniform_upward_matrix(9),
        arrival_rate=0.001,
        termination_rate=0.001,
    )
    model = ElasticQoSMarkovModel(qos, params)
    bw = benchmark(model.average_bandwidth)
    assert 100.0 <= bw <= 500.0
