"""Figure 4: average bandwidth vs. link failure rate.

Regenerates the paper's Figure 4: with the chain parameters measured at
two populations, the failure rate γ is swept across five decades in the
9-state Markov chain ("A Markov chain with 9 states is used to evaluate
the effect").  The paper's finding: "no effect of link failures on the
average bandwidth since the link failure rate is too small compared to
the DR-connection request arrival and termination rates" — the curves
are flat, with the larger population's curve sitting lower.

A simulation spot-check with real failure injection (and repairs, so the
topology is not eroded) validates the analytic flatness at one γ.
"""

from __future__ import annotations

from benchmarks.conftest import archive, archive_timings, full_scale
from repro.analysis.experiments import run_figure4
from repro.analysis.report import render_table
from repro.units import PAPER_FAILURE_RATES


def test_figure4(benchmark, scale, jobs):
    rates = PAPER_FAILURE_RATES[:-1]  # 1e-7 .. 1e-3
    check = (1e-5,) if not full_scale() else (1e-5, 1e-4)
    sink = []
    series = benchmark.pedantic(
        lambda: run_figure4(
            rates,
            populations=scale.figure4_populations,
            nodes=scale.nodes,
            edges=scale.edges,
            settings=scale.settings,
            simulate_checks=check,
            jobs=jobs,
            timing_sink=sink,
        ),
        rounds=1,
        iterations=1,
    )
    archive_timings("figure4", sink)
    headers = ["failure rate γ"] + [f"Avg{s.population}ft Kb/s" for s in series]
    rows = [
        [f"{gamma:.0e}"] + [s.analytic[i] for s in series]
        for i, gamma in enumerate(rates)
    ]
    table = render_table(
        headers, rows, title="Figure 4 — avg bandwidth vs. link failure rate (model)"
    )
    checks = "\n".join(
        f"sim check (pop {s.population}, γ={g:.0e}): {bw:.1f} Kb/s"
        for s in series
        for g, bw in s.simulated_checks
    )
    archive("figure4", table + "\n" + checks)

    lam = scale.settings.arrival_rate
    for s in series:
        # Flat while gamma << lambda (the paper's regime).
        small = [bw for g, bw in zip(rates, s.analytic) if g <= lam / 100]
        assert max(small) - min(small) < 0.02 * max(small)
        # gamma only adds downward pressure.
        assert all(a >= b - 1e-9 for a, b in zip(s.analytic, s.analytic[1:]))
    if len(series) == 2:
        lighter, heavier = series
        # The larger population's curve sits at or below the smaller's.
        assert all(
            lo <= hi + 25.0 for hi, lo in zip(lighter.analytic, heavier.analytic)
        )
