"""Table 1: average bandwidth for different increment sizes.

Regenerates the paper's Table 1: the average bandwidth measured with a
5-state chain (Δ = 100 Kb/s) versus a 9-state chain (Δ = 50 Kb/s), on a
"Random" (Waxman) and a "Tier" (transit-stub) network.  The paper's
findings: (1) the two increment sizes yield essentially the same average
bandwidth, and (2) the Tier network rejects most offered connections, so
its average stays high while its admitted population is small.
"""

from __future__ import annotations

from benchmarks.conftest import archive, archive_timings
from repro.analysis.experiments import run_table1
from repro.analysis.report import render_table


def test_table1(benchmark, scale, jobs):
    sink = []
    rows = benchmark.pedantic(
        lambda: run_table1(
            scale.table1_counts,
            nodes=scale.nodes,
            edges=scale.edges,
            settings=scale.settings,
            jobs=jobs,
            timing_sink=sink,
        ),
        rounds=1,
        iterations=1,
    )
    archive_timings("table1", sink)
    table = render_table(
        ["offered", "Random Δ=100 (5)", "Random Δ=50 (9)", "Tier Δ=100 (5)", "Tier Δ=50 (9)"],
        [
            [
                row.offered,
                row.random_5_states,
                row.random_9_states,
                row.tier_5_states,
                row.tier_9_states,
            ]
            for row in rows
        ],
        title="Table 1 — avg bandwidth (Kb/s) for different increment sizes",
    )
    archive("table1", table)

    for row in rows:
        # Paper: "The table shows no difference in the average bandwidth
        # even though they have a different number of states."
        assert abs(row.random_5_states - row.random_9_states) <= max(
            50.0, 0.15 * row.random_9_states
        )
        assert abs(row.tier_5_states - row.tier_9_states) <= max(
            50.0, 0.15 * row.tier_9_states
        )
