"""Ablation A3: adaptation policies (equal share / coefficient / max-utility).

Section 2.2 of the paper contrasts the max-utility scheme (which "allows
a real-time channel to monopolize all the extra resources even when its
utility is slightly higher than the others") with the coefficient scheme
(proportional sharing).  This ablation runs a two-class workload — half
the clients with utility 1, half with utility 4 — under each policy and
reports per-class average bandwidth plus aggregate utility.

Each policy leg is a self-contained, picklable job (topology rebuilt
from a :class:`TopologySpec` inside the worker), so the three legs fan
out over :func:`repro.parallel.parallel_map` when ``REPRO_JOBS`` > 1.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import archive, bench_jobs
from repro.analysis.report import render_table
from repro.channels.manager import NetworkManager
from repro.elastic.policies import policy_by_name
from repro.parallel import TopologySpec, parallel_map
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.units import PAPER_B_MAX, PAPER_B_MIN, PAPER_LINK_CAPACITY


def contract(utility: float) -> ConnectionQoS:
    return ConnectionQoS(
        performance=ElasticQoS(
            b_min=PAPER_B_MIN, b_max=PAPER_B_MAX, increment=50.0, utility=utility
        ),
        dependability=DependabilityQoS(num_backups=1),
    )


def _run_policy_leg(spec):
    """One policy over the shared request sequence (module-level: picklable)."""
    policy_name, topology, offered, pair_seed = spec
    net = topology.build()
    manager = NetworkManager(net, policy=policy_by_name(policy_name))
    pair_rng = np.random.default_rng(pair_seed)
    nodes = np.array(net.nodes())
    for i in range(offered):
        src, dst = pair_rng.choice(nodes, size=2, replace=False)
        manager.request_connection(int(src), int(dst), contract(4.0 if i % 2 else 1.0))
    by_class = {1.0: [], 4.0: []}
    total_utility = 0.0
    for conn in manager.connections.values():
        extras = conn.bandwidth - conn.qos.performance.b_min
        total_utility += conn.qos.performance.utility * extras
        by_class[conn.qos.performance.utility].append(conn.bandwidth)
    return [
        policy_name,
        float(np.mean(by_class[1.0])),
        float(np.mean(by_class[4.0])),
        manager.average_live_bandwidth(),
        total_utility,
    ]


def test_policy_ablation(benchmark, scale):
    topology = TopologySpec(
        "waxman",
        PAPER_LINK_CAPACITY,
        scale.settings.seed,
        nodes=scale.nodes,
        edges=scale.edges,
    )
    offered = max(scale.figure2_counts)
    pair_seed = scale.settings.seed + 1
    specs = [
        (name, topology, offered, pair_seed)
        for name in ("equal-share", "utility-proportional", "max-utility")
    ]

    rows = benchmark.pedantic(
        lambda: parallel_map(_run_policy_leg, specs, jobs=bench_jobs()),
        rounds=1,
        iterations=1,
    )
    table = render_table(
        ["policy", "avg bw u=1", "avg bw u=4", "avg bw all", "total utility"],
        rows,
        title=f"Ablation A3 — adaptation policy, two utility classes ({offered} offered)",
    )
    archive("ablation_policy", table)

    equal, proportional, greedy = rows
    # Equal share ignores utility: both classes within a few Kb/s.
    assert abs(equal[1] - equal[2]) < 30.0
    # Proportional favours the utility-4 class.
    assert proportional[2] > proportional[1]
    # Max-utility starves the low class hardest and tops total utility.
    assert greedy[1] <= proportional[1] + 1e-9
    assert greedy[4] >= equal[4] - 1e-9
