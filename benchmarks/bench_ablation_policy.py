"""Ablation A3: adaptation policies (equal share / coefficient / max-utility).

Section 2.2 of the paper contrasts the max-utility scheme (which "allows
a real-time channel to monopolize all the extra resources even when its
utility is slightly higher than the others") with the coefficient scheme
(proportional sharing).  This ablation runs a two-class workload — half
the clients with utility 1, half with utility 4 — under each policy and
reports per-class average bandwidth plus aggregate utility.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import archive
from repro.analysis.report import render_table
from repro.channels.manager import NetworkManager
from repro.elastic.policies import EqualShare, MaxUtility, UtilityProportional
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.topology.waxman import paper_random_network
from repro.units import PAPER_B_MAX, PAPER_B_MIN, PAPER_LINK_CAPACITY


def contract(utility: float) -> ConnectionQoS:
    return ConnectionQoS(
        performance=ElasticQoS(
            b_min=PAPER_B_MIN, b_max=PAPER_B_MAX, increment=50.0, utility=utility
        ),
        dependability=DependabilityQoS(num_backups=1),
    )


def test_policy_ablation(benchmark, scale):
    rng = np.random.default_rng(scale.settings.seed)
    net = paper_random_network(
        PAPER_LINK_CAPACITY, rng, n=scale.nodes, target_edges=scale.edges
    )
    offered = max(scale.figure2_counts)
    pair_rng = np.random.default_rng(scale.settings.seed + 1)
    nodes = np.array(net.nodes())
    requests = []
    for i in range(offered):
        src, dst = pair_rng.choice(nodes, size=2, replace=False)
        requests.append((int(src), int(dst), contract(4.0 if i % 2 else 1.0)))

    def run():
        rows = []
        for policy in (EqualShare(), UtilityProportional(), MaxUtility()):
            manager = NetworkManager(net, policy=policy)
            for src, dst, qos in requests:
                manager.request_connection(src, dst, qos)
            by_class = {1.0: [], 4.0: []}
            total_utility = 0.0
            for conn in manager.connections.values():
                extras = conn.bandwidth - conn.qos.performance.b_min
                total_utility += conn.qos.performance.utility * extras
                by_class[conn.qos.performance.utility].append(conn.bandwidth)
            rows.append(
                [
                    policy.name,
                    float(np.mean(by_class[1.0])),
                    float(np.mean(by_class[4.0])),
                    manager.average_live_bandwidth(),
                    total_utility,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["policy", "avg bw u=1", "avg bw u=4", "avg bw all", "total utility"],
        rows,
        title=f"Ablation A3 — adaptation policy, two utility classes ({offered} offered)",
    )
    archive("ablation_policy", table)

    equal, proportional, greedy = rows
    # Equal share ignores utility: both classes within a few Kb/s.
    assert abs(equal[1] - equal[2]) < 30.0
    # Proportional favours the utility-4 class.
    assert proportional[2] > proportional[1]
    # Max-utility starves the low class hardest and tops total utility.
    assert greedy[1] <= proportional[1] + 1e-9
    assert greedy[4] >= equal[4] - 1e-9
