"""Ablation A5: CTMC steady-state solvers (the SHARPE substitution).

Cross-validates the three steady-state methods on the paper's actual
chain shape (measured parameters) and times them on growing synthetic
chains.  This is the benchmark that justifies replacing SHARPE: all
three independent solvers agree to 1e-10 on the paper's 9-state chain
and remain fast far beyond it.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import archive
from repro.markov.ctmc import steady_state
from repro.markov.model import ElasticQoSMarkovModel
from repro.markov.parameters import (
    MarkovParameters,
    uniform_downward_matrix,
    uniform_upward_matrix,
)
from repro.qos.spec import ElasticQoS


def paper_like_params(n: int) -> MarkovParameters:
    return MarkovParameters(
        num_levels=n,
        pf=0.2,
        ps=0.4,
        a=uniform_downward_matrix(n),
        b=uniform_upward_matrix(n),
        t=uniform_upward_matrix(n),
        arrival_rate=0.001,
        termination_rate=0.001,
        failure_rate=1e-5,
    )


def random_generator(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    q = rng.random((n, n)) * 0.01 + 1e-4
    np.fill_diagonal(q, 0.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


class TestSolverAgreement:
    def test_paper_chain_cross_validation(self, benchmark):
        qos = ElasticQoS(b_min=100.0, b_max=500.0, increment=50.0)
        model = ElasticQoSMarkovModel(qos, paper_like_params(9))
        q = model.generator()
        pis = benchmark.pedantic(
            lambda: {m: steady_state(q, method=m) for m in ("direct", "lstsq", "power")},
            rounds=1,
            iterations=1,
        )
        report = ["CTMC solver cross-validation on the 9-state paper chain:"]
        for name, pi in pis.items():
            residual = float(np.abs(pi @ q).max())
            report.append(f"  {name:7s} residual {residual:.3e}")
            assert residual < 1e-10
        assert np.allclose(pis["direct"], pis["lstsq"], atol=1e-10)
        assert np.allclose(pis["direct"], pis["power"], atol=1e-8)
        archive("ctmc_agreement", "\n".join(report))


@pytest.mark.parametrize("n", [9, 50, 200])
@pytest.mark.parametrize("method", ["direct", "lstsq", "power"])
def test_solver_speed(benchmark, n, method):
    q = random_generator(n, seed=n)
    pi = benchmark(lambda: steady_state(q, method=method))
    assert abs(pi.sum() - 1.0) < 1e-9
