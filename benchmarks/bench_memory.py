"""Memory-footprint benchmarks of the simulation cores.

Two guards ride here:

* ``test_memory_per_connection`` — bytes of core bookkeeping state per
  live connection, array core vs object core.  The SoA core's whole
  point is that a connection is a table row plus two CSR slices, not a
  Python object graph; this pins the ratio so a future change that
  quietly re-introduces per-connection object state shows up as a
  number, not a feeling.
* ``test_hundred_thousand_connections`` — a 10⁵-connection smoke: the
  handle allocator, CSR arenas and vectorized accounting must take a
  population two orders of magnitude beyond the paper's experiments
  without blowing up (in time or invariants).  Backups off, single
  elastic level, so the run isolates admission + bookkeeping cost.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.channels import ArrayNetworkManager, NetworkManager, make_manager
from repro.qos.spec import ConnectionQoS, DependabilityQoS, ElasticQoS
from repro.topology.regular import grid_network


def _deep_size(obj, seen=None) -> int:
    """Recursive ``sys.getsizeof`` over containers and object graphs."""
    if seen is None:
        seen = set()
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(
            _deep_size(k, seen) + _deep_size(v, seen) for k, v in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(_deep_size(item, seen) for item in obj)
    elif isinstance(obj, np.ndarray):
        size += obj.nbytes
    if hasattr(obj, "__dict__"):
        size += _deep_size(vars(obj), seen)
    if hasattr(obj, "__slots__"):
        size += sum(
            _deep_size(getattr(obj, slot), seen)
            for slot in obj.__slots__
            if hasattr(obj, slot)
        )
    return size


def _populate(manager, net, count: int, qos: ConnectionQoS, seed: int = 3) -> None:
    rng = np.random.default_rng(seed)
    links = net.link_ids()
    while manager.num_live < count:
        s, d = links[int(rng.integers(len(links)))]
        manager.request_connection(s, d, qos)


def _array_state_bytes(manager: ArrayNetworkManager) -> int:
    cols, arenas = manager.conns.nbytes()
    return cols + arenas + manager.links.nbytes()


def _object_state_bytes(manager: NetworkManager) -> int:
    # The object core's equivalents of the columns: the connection
    # objects themselves plus the per-link reservation ledgers.
    seen: set = set()
    size = _deep_size(manager.connections, seen)
    for lid in manager.state.topology.link_ids():
        ls = manager.state.link(lid)
        size += _deep_size(ls.primary_min, seen)
        size += _deep_size(ls.primary_extra, seen)
        size += _deep_size(ls.activated, seen)
        size += _deep_size(ls.backup_members, seen)
        size += _deep_size(ls.backup_demand, seen)
    return size


def test_memory_per_connection():
    net = grid_network(8, 8, capacity=100_000.0)
    qos = ConnectionQoS(
        performance=ElasticQoS(b_min=50.0, b_max=250.0, increment=50.0),
        dependability=DependabilityQoS(num_backups=1),
    )
    count = 400
    ma = make_manager(net, core="array")
    mo = make_manager(net, core="object")
    _populate(ma, net, count, qos)
    _populate(mo, net, count, qos)
    assert ma.num_live == mo.num_live == count

    array_bpc = _array_state_bytes(ma) / count
    object_bpc = _object_state_bytes(mo) / count
    print(
        f"\nbytes per live connection: array {array_bpc:.0f}"
        f" vs object {object_bpc:.0f} ({object_bpc / array_bpc:.1f}x)"
    )
    # Row-plus-CSR bookkeeping: generously < 2 KiB per connection even
    # with growth slack, and well under the object graph.
    assert array_bpc < 2048
    assert array_bpc < 0.5 * object_bpc


def test_hundred_thousand_connections():
    net = grid_network(20, 20, capacity=10_000_000.0)
    # Single-level elastic contract, no backups: admission and
    # bookkeeping only, no redistribution churn.
    qos = ConnectionQoS(
        performance=ElasticQoS(b_min=50.0, b_max=50.0, increment=50.0),
        dependability=DependabilityQoS(num_backups=0),
    )
    manager = make_manager(net, core="array")
    count = 100_000
    _populate(manager, net, count, qos, seed=9)
    assert manager.num_live == count
    manager.check_invariants()

    # Drop a slice and refill: the free list must recycle handles
    # rather than growing the table without bound.
    cap_before = len(manager.conns.conn_id)
    for cid in manager.live_connection_ids()[:10_000]:
        manager.terminate_connection(cid)
    assert manager.num_live == count - 10_000
    _populate(manager, net, count, qos, seed=10)
    assert manager.num_live == count
    assert len(manager.conns.conn_id) == cap_before
    manager.check_invariants()

    total = _array_state_bytes(manager)
    print(f"\n100k connections: core state {total / 1e6:.1f} MB "
          f"({total / count:.0f} B/conn)")
    assert total < 200e6
