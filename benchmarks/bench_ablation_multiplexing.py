"""Ablation A2: backup-channel multiplexing on vs. off.

The paper (§2.1.2): "The amount of resources to be reserved for backup
channels can be reduced by multiplexing multiple backups, or overbooking
resources."  This ablation offers the same request sequence to a manager
with multiplexing enabled and one where every backup reservation is
accounted separately, and reports acceptance and reservation totals.

The two legs are independent, picklable jobs (topology rebuilt from a
:class:`TopologySpec` in the worker) and fan out over
:func:`repro.parallel.parallel_map` when ``REPRO_JOBS`` > 1.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import archive, bench_jobs
from repro.analysis.experiments import paper_connection_qos
from repro.analysis.report import render_table
from repro.baselines.compare import multiplexing_savings
from repro.channels.manager import NetworkManager
from repro.parallel import TopologySpec, parallel_map
from repro.units import PAPER_LINK_CAPACITY


def _run_mux_leg(spec):
    """One multiplexing configuration over the shared requests (picklable)."""
    label, mux, topology, offered, seed = spec
    net = topology.build()
    manager = NetworkManager(net, multiplex_backups=mux)
    rng = np.random.default_rng(seed)
    nodes = np.array(net.nodes())
    qos = paper_connection_qos()
    for _ in range(offered):
        src, dst = rng.choice(nodes, size=2, replace=False)
        manager.request_connection(int(src), int(dst), qos)
    savings = multiplexing_savings(manager)
    return {
        "label": label,
        "accepted": manager.stats.accepted,
        "acceptance_ratio": manager.stats.acceptance_ratio,
        "average_bandwidth": manager.average_live_bandwidth(),
        "savings": savings,
    }


def test_multiplexing_ablation(benchmark, scale):
    topology = TopologySpec(
        "waxman",
        PAPER_LINK_CAPACITY,
        scale.settings.seed,
        nodes=scale.nodes,
        edges=scale.edges,
    )
    offered = max(scale.figure2_counts)
    specs = [
        ("multiplexed", True, topology, offered, scale.settings.seed),
        ("naive", False, topology, offered, scale.settings.seed),
    ]

    legs = benchmark.pedantic(
        lambda: parallel_map(_run_mux_leg, specs, jobs=bench_jobs()),
        rounds=1,
        iterations=1,
    )
    out = {leg["label"]: leg for leg in legs}
    rows = [
        [
            leg["label"],
            offered,
            leg["accepted"],
            leg["acceptance_ratio"],
            leg["savings"]["multiplexed_reservation"],
            leg["average_bandwidth"],
        ]
        for leg in legs
    ]
    table = render_table(
        ["scheme", "offered", "accepted", "acceptance", "backup rsv Kb/s", "avg bw Kb/s"],
        rows,
        precision=3,
        title=f"Ablation A2 — backup multiplexing on/off ({offered} offered)",
    )
    mux_savings = out["multiplexed"]["savings"]
    extra = (
        f"multiplexing saves {mux_savings['saved']:.0f} Kb/s of reservation "
        f"({100 * mux_savings['savings_ratio']:.1f}% of the naive total)"
    )
    archive("ablation_multiplexing", table + "\n" + extra)

    # Multiplexing must never hurt and, under load, strictly helps.
    assert out["multiplexed"]["accepted"] >= out["naive"]["accepted"]
    assert mux_savings["savings_ratio"] > 0.3
    # The naive manager reserves strictly more backup bandwidth per accepted
    # connection.
    naive_rsv = out["naive"]["savings"]["multiplexed_reservation"]
    mux_rsv = mux_savings["multiplexed_reservation"]
    assert naive_rsv / max(1, out["naive"]["accepted"]) > mux_rsv / max(
        1, out["multiplexed"]["accepted"]
    )
