"""Ablation A2: backup-channel multiplexing on vs. off.

The paper (§2.1.2): "The amount of resources to be reserved for backup
channels can be reduced by multiplexing multiple backups, or overbooking
resources."  This ablation offers the same request sequence to a manager
with multiplexing enabled and one where every backup reservation is
accounted separately, and reports acceptance and reservation totals.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import archive
from repro.analysis.experiments import paper_connection_qos
from repro.analysis.report import render_table
from repro.baselines.compare import multiplexing_savings
from repro.channels.manager import NetworkManager
from repro.topology.waxman import paper_random_network
from repro.units import PAPER_LINK_CAPACITY


def _offer(manager: NetworkManager, net, offered: int, seed: int) -> None:
    rng = np.random.default_rng(seed)
    nodes = np.array(net.nodes())
    qos = paper_connection_qos()
    for _ in range(offered):
        src, dst = rng.choice(nodes, size=2, replace=False)
        manager.request_connection(int(src), int(dst), qos)


def test_multiplexing_ablation(benchmark, scale):
    rng = np.random.default_rng(scale.settings.seed)
    net = paper_random_network(
        PAPER_LINK_CAPACITY, rng, n=scale.nodes, target_edges=scale.edges
    )
    offered = max(scale.figure2_counts)

    def run():
        out = {}
        for label, mux in (("multiplexed", True), ("naive", False)):
            manager = NetworkManager(net, multiplex_backups=mux)
            _offer(manager, net, offered, scale.settings.seed)
            savings = multiplexing_savings(manager)
            out[label] = (manager, savings)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, (manager, savings) in out.items():
        rows.append(
            [
                label,
                offered,
                manager.stats.accepted,
                manager.stats.acceptance_ratio,
                savings["multiplexed_reservation"],
                manager.average_live_bandwidth(),
            ]
        )
    table = render_table(
        ["scheme", "offered", "accepted", "acceptance", "backup rsv Kb/s", "avg bw Kb/s"],
        rows,
        precision=3,
        title=f"Ablation A2 — backup multiplexing on/off ({offered} offered)",
    )
    mux_savings = out["multiplexed"][1]
    extra = (
        f"multiplexing saves {mux_savings['saved']:.0f} Kb/s of reservation "
        f"({100 * mux_savings['savings_ratio']:.1f}% of the naive total)"
    )
    archive("ablation_multiplexing", table + "\n" + extra)

    mux_mgr = out["multiplexed"][0]
    naive_mgr = out["naive"][0]
    # Multiplexing must never hurt and, under load, strictly helps.
    assert mux_mgr.stats.accepted >= naive_mgr.stats.accepted
    assert mux_savings["savings_ratio"] > 0.3
    # The naive manager reserves strictly more backup bandwidth per accepted
    # connection.
    naive_rsv = out["naive"][1]["multiplexed_reservation"]
    mux_rsv = mux_savings["multiplexed_reservation"]
    assert naive_rsv / max(1, naive_mgr.stats.accepted) > mux_rsv / max(
        1, mux_mgr.stats.accepted
    )
