"""Distill ``bench_core_ops`` into a machine-readable JSON artifact.

Runs the core-op micro-benchmarks through pytest-benchmark and folds the
timing statistics into ``BENCH_core_ops.json`` at the repository root so
the performance trajectory is tracked across PRs.  Each invocation
appends (or replaces, by label) one entry in the artifact's ``runs``
list, so before/after comparisons live side by side in one file::

    PYTHONPATH=src python benchmarks/bench_to_json.py --label pr2
    PYTHONPATH=src python benchmarks/bench_to_json.py --quick --label ci --output bench_ci.json

The artifact is intentionally small and stable-keyed: one object per
benchmark with mean/median/min/stddev in microseconds plus round counts,
so CI logs and diff views stay readable.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = Path(__file__).resolve().parent / "bench_core_ops.py"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core_ops.json"

#: Seconds -> microseconds (all artifact times are in µs).
_US = 1e6


def machine_calibration(reps: int = 15) -> float:
    """Median µs of a fixed numpy workload — a machine-speed canary.

    Recorded alongside each run so cross-machine (or throttled-CPU)
    comparisons can be normalized instead of misread as regressions:
    ``bench_check`` scales a baseline's medians by the ratio of the two
    runs' calibrations before applying its tolerance.
    """
    import time

    import numpy as np

    rng = np.random.default_rng(12345)
    a = rng.standard_normal((160, 160))
    a = a @ a.T + 160.0 * np.eye(160)
    b = rng.standard_normal(160)
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        np.linalg.solve(a, b)
        np.sort(rng.standard_normal(200_000))
        times.append(time.perf_counter() - t0)
    times.sort()
    return round(times[len(times) // 2] * _US, 1)


def run_benchmarks(quick: bool, extra_args: list[str]) -> Dict[str, dict]:
    """Run bench_core_ops under pytest-benchmark; return name -> stats."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "benchmark.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            str(BENCH_FILE),
            "-q",
            "--benchmark-json",
            str(raw_path),
            "--benchmark-sort=name",
        ]
        if quick:
            cmd += ["--benchmark-min-rounds=5", "--benchmark-max-time=0.5"]
        cmd += extra_args
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed with exit code {proc.returncode}")
        raw = json.loads(raw_path.read_text())

    results: Dict[str, dict] = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        results[bench["name"]] = {
            "mean_us": round(stats["mean"] * _US, 3),
            "median_us": round(stats["median"] * _US, 3),
            "min_us": round(stats["min"] * _US, 3),
            "stddev_us": round(stats["stddev"] * _US, 3),
            "rounds": stats["rounds"],
        }
    return results


def git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        return out.stdout.strip() if out.returncode == 0 else "unknown"
    except OSError:  # pragma: no cover - git always present in CI
        return "unknown"


def merge_run(output: Path, label: str, results: Dict[str, dict]) -> dict:
    """Insert/replace the run ``label`` in the artifact at ``output``."""
    artifact = {"benchmark": "bench_core_ops", "runs": []}
    if output.exists():
        try:
            artifact = json.loads(output.read_text())
        except json.JSONDecodeError:
            pass  # regenerate a corrupt artifact from scratch
    runs = [run for run in artifact.get("runs", []) if run.get("label") != label]
    runs.append(
        {
            "label": label,
            "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "git": git_revision(),
            "python": platform.python_version(),
            "core": os.environ.get("REPRO_BENCH_CORE", "array"),
            "calib_us": machine_calibration(),
            "results": results,
        }
    )
    artifact["benchmark"] = "bench_core_ops"
    artifact["runs"] = runs
    # Atomic tmp-then-rename write: an interrupted run must never leave
    # a truncated artifact that the next merge_run would silently reset.
    tmp = output.with_name(output.name + ".tmp")
    tmp.write_text(json.dumps(artifact, indent=2, sort_keys=False) + "\n")
    tmp.replace(output)
    return artifact


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="current", help="name of this run in the artifact")
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"artifact path (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer benchmark rounds (CI smoke; numbers are noisier)",
    )
    parser.add_argument(
        "pytest_args", nargs="*", help="extra arguments forwarded to pytest"
    )
    args = parser.parse_args(argv)

    results = run_benchmarks(args.quick, args.pytest_args)
    artifact = merge_run(args.output, args.label, results)
    print(f"wrote {args.output} ({len(artifact['runs'])} runs)")
    for name, stats in sorted(results.items()):
        print(f"  {name}: mean {stats['mean_us']:.1f} µs over {stats['rounds']} rounds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
