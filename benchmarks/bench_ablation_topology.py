"""Ablation A7: topology family — geometric (Waxman) vs. pure random.

Section 3.3 argues the chaining probabilities "depend solely on the
network topology and the average number of hops of channels".  This
ablation holds node count, edge count, capacity and load fixed and
swaps only the topology *family*: the paper's distance-biased Waxman
graph versus GT-ITM's non-geometric pure-random graph.  The measured
Pf/Ps and the resulting average bandwidth quantify how much topology
structure (not just density) matters to the model's parameters.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import archive
from repro.analysis.experiments import paper_connection_qos, simulate_point
from repro.analysis.report import render_table
from repro.topology.metrics import average_shortest_path_hops
from repro.topology.random_flat import pure_random_with_edge_target
from repro.topology.waxman import paper_random_network
from repro.units import PAPER_LINK_CAPACITY


def test_topology_family_ablation(benchmark, scale):
    offered = scale.figure2_counts[len(scale.figure2_counts) // 2]
    rng_w = np.random.default_rng(scale.settings.seed)
    rng_r = np.random.default_rng(scale.settings.seed)
    waxman = paper_random_network(
        PAPER_LINK_CAPACITY, rng_w, n=scale.nodes, target_edges=scale.edges
    )
    flat = pure_random_with_edge_target(
        scale.nodes, waxman.num_links, PAPER_LINK_CAPACITY, rng_r
    )
    qos = paper_connection_qos()

    def run():
        rows = []
        for name, net in (("waxman", waxman), ("pure-random", flat)):
            result, model = simulate_point(net, offered, qos, scale.settings)
            rows.append(
                [
                    name,
                    net.num_links,
                    average_shortest_path_hops(net),
                    result.params.pf,
                    result.params.ps,
                    result.average_bandwidth,
                    model.average_bandwidth(),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["topology", "edges", "avg hops", "Pf", "Ps", "sim Kb/s", "model Kb/s"],
        rows,
        precision=3,
        title=f"Ablation A7 — topology family at equal density ({offered} offered)",
    )
    archive("ablation_topology", table)

    waxman_row, flat_row = rows
    # Equal density by construction (within sampling spread).
    assert abs(waxman_row[1] - flat_row[1]) <= 0.35 * waxman_row[1]
    # The model must track its own simulation on both families.
    for row in rows:
        assert abs(row[6] - row[5]) < 0.25 * row[5]
    # Chaining probabilities are measurable and in-range on both.
    for row in rows:
        assert 0.0 < row[3] < 1.0
        assert 0.0 <= row[4] <= 1.0
