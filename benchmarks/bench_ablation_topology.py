"""Ablation A7: topology family — geometric (Waxman) vs. pure random.

Section 3.3 argues the chaining probabilities "depend solely on the
network topology and the average number of hops of channels".  This
ablation holds node count, edge count, capacity and load fixed and
swaps only the topology *family*: the paper's distance-biased Waxman
graph versus GT-ITM's non-geometric pure-random graph.  The measured
Pf/Ps and the resulting average bandwidth quantify how much topology
structure (not just density) matters to the model's parameters.

Both legs run as :class:`~repro.parallel.SimJob` specs; the pure-random
spec's edge target is taken from the Waxman instance so density stays
matched.  Topology construction is deterministic per spec, so the
parent can rebuild the same instance for the structural metrics.
"""

from __future__ import annotations

from benchmarks.conftest import archive, bench_jobs
from repro.analysis.experiments import paper_connection_qos
from repro.analysis.report import render_table
from repro.markov.model import ElasticQoSMarkovModel
from repro.parallel import SimJob, TopologySpec, derive_seeds, run_sim_jobs
from repro.topology.metrics import average_shortest_path_hops
from repro.units import PAPER_LINK_CAPACITY


def test_topology_family_ablation(benchmark, scale):
    offered = scale.figure2_counts[len(scale.figure2_counts) // 2]
    seeds = derive_seeds(scale.settings.seed, 4)
    waxman_spec = TopologySpec(
        "waxman", PAPER_LINK_CAPACITY, seeds[0], nodes=scale.nodes, edges=scale.edges
    )
    # Match density to the *realized* Waxman edge count, as the paper's
    # GT-ITM comparison holds density fixed.
    waxman = waxman_spec.build()
    flat_spec = TopologySpec(
        "random-flat",
        PAPER_LINK_CAPACITY,
        seeds[1],
        nodes=scale.nodes,
        edges=waxman.num_links,
    )
    qos = paper_connection_qos()
    sim_jobs = [
        SimJob.from_settings(
            ("ablation-topology", name), spec, offered, qos, scale.settings, seed
        )
        for name, spec, seed in (
            ("waxman", waxman_spec, seeds[2]),
            ("pure-random", flat_spec, seeds[3]),
        )
    ]

    results = benchmark.pedantic(
        lambda: run_sim_jobs(sim_jobs, jobs=bench_jobs()), rounds=1, iterations=1
    )
    nets = {"waxman": waxman, "pure-random": flat_spec.build()}
    rows = []
    for res in results:
        name = res.job.key[1]
        net = nets[name]
        model = ElasticQoSMarkovModel(qos.performance, res.result.params)
        rows.append(
            [
                name,
                net.num_links,
                average_shortest_path_hops(net),
                res.result.params.pf,
                res.result.params.ps,
                res.result.average_bandwidth,
                model.average_bandwidth(),
            ]
        )
    table = render_table(
        ["topology", "edges", "avg hops", "Pf", "Ps", "sim Kb/s", "model Kb/s"],
        rows,
        precision=3,
        title=f"Ablation A7 — topology family at equal density ({offered} offered)",
    )
    archive("ablation_topology", table)

    waxman_row, flat_row = rows
    # Equal density by construction (within sampling spread).
    assert abs(waxman_row[1] - flat_row[1]) <= 0.35 * waxman_row[1]
    # The model must track its own simulation on both families.
    for row in rows:
        assert abs(row[6] - row[5]) < 0.25 * row[5]
    # Chaining probabilities are measurable and in-range on both.
    for row in rows:
        assert 0.0 < row[3] < 1.0
        assert 0.0 <= row[4] <= 1.0
