"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one of the paper's exhibits (Figure 2,
Table 1, Figure 3, Figure 4) or an ablation, prints the resulting
rows/series, and archives them under ``benchmarks/results/`` so
EXPERIMENTS.md can quote them.

Two scales are supported:

* default — laptop scale (~60-node networks, hundreds-to-thousands of
  connections); the whole suite completes in minutes;
* ``REPRO_FULL=1`` — the paper's exact scale (100-500 nodes, up to 5000
  connections); expect tens of minutes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence

import pytest

from repro.analysis.experiments import RunSettings
from repro.parallel import SimJobResult, atomic_write_text, resolve_jobs

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    """Whether the paper-exact scale was requested."""
    return os.environ.get("REPRO_FULL", "").strip() not in ("", "0")


@dataclass(frozen=True)
class BenchScale:
    """Scale knobs shared by the figure/table benchmarks."""

    nodes: int
    edges: int
    figure2_counts: Sequence[int]
    table1_counts: Sequence[int]
    figure3_nodes: Sequence[int]
    figure3_connections: int
    figure4_populations: Sequence[int]
    settings: RunSettings


def bench_scale() -> BenchScale:
    """The active scale (env-controlled)."""
    if full_scale():
        return BenchScale(
            nodes=100,
            edges=354,
            figure2_counts=(500, 1000, 2000, 3000, 4000, 5000),
            table1_counts=(1000, 2000, 3000, 4000, 5000),
            figure3_nodes=(100, 200, 300, 400, 500),
            figure3_connections=3000,
            figure4_populations=(2000, 3000),
            settings=RunSettings(warmup_events=500, measure_events=3000, seed=7),
        )
    return BenchScale(
        nodes=60,
        edges=130,
        figure2_counts=(150, 300, 600, 1000, 1500),
        table1_counts=(300, 800, 1500),
        figure3_nodes=(40, 60, 80, 100),
        figure3_connections=600,
        figure4_populations=(400, 700),
        settings=RunSettings(warmup_events=200, measure_events=1000, seed=7),
    )


def bench_jobs() -> int:
    """Worker count for benchmark campaigns (``REPRO_JOBS``, default 1)."""
    return resolve_jobs(None)


def archive(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    scale_tag = "full" if full_scale() else "quick"
    path = RESULTS_DIR / f"{name}.{scale_tag}.txt"
    atomic_write_text(path, text + "\n")
    print(f"\n{text}\n[archived to {path}]")


def archive_timings(name: str, results: List[SimJobResult]) -> None:
    """Persist the per-job wall-time breakdown next to the result table.

    The cumulative job time vs. the wall time of the slowest worker is
    what documents the parallel speedup on a multi-core runner; worker
    pids show how the campaign actually spread.
    """
    if not results:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    scale_tag = "full" if full_scale() else "quick"
    path = RESULTS_DIR / f"{name}.timing.{scale_tag}.txt"
    total = sum(r.wall_time for r in results)
    per_pid: dict = {}
    for r in results:
        per_pid[r.worker_pid] = per_pid.get(r.worker_pid, 0.0) + r.wall_time
    critical = max(per_pid.values())
    # Longest-processing-time schedule of the measured jobs over 4
    # workers: the wall time (and speedup) a 4-core runner achieves.
    lanes = [0.0, 0.0, 0.0, 0.0]
    for t in sorted((r.wall_time for r in results), reverse=True):
        lanes[lanes.index(min(lanes))] += t
    projected = max(lanes)
    lines = [
        f"# {name} per-job wall times ({scale_tag} scale)",
        f"# workers={bench_jobs()} cpu_count={os.cpu_count()} jobs={len(results)}",
        f"# cumulative job time {total:.2f}s; busiest worker {critical:.2f}s "
        f"(speedup this run {total / critical:.2f}x)",
        f"# projected wall time with jobs=4 on 4 cores: {projected:.2f}s "
        f"({total / projected:.2f}x over sequential)",
    ]
    for r in results:
        key = "/".join(str(part) for part in r.key)
        lines.append(f"{key}\t{r.wall_time:.3f}s\tpid={r.worker_pid}")
    atomic_write_text(path, "\n".join(lines) + "\n")
    print(f"[timings archived to {path}]")


@pytest.fixture
def scale() -> BenchScale:
    """Active benchmark scale."""
    return bench_scale()


@pytest.fixture
def jobs() -> int:
    """Worker count for the campaign benchmarks."""
    return bench_jobs()
