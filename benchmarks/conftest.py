"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one of the paper's exhibits (Figure 2,
Table 1, Figure 3, Figure 4) or an ablation, prints the resulting
rows/series, and archives them under ``benchmarks/results/`` so
EXPERIMENTS.md can quote them.

Two scales are supported:

* default — laptop scale (~60-node networks, hundreds-to-thousands of
  connections); the whole suite completes in minutes;
* ``REPRO_FULL=1`` — the paper's exact scale (100-500 nodes, up to 5000
  connections); expect tens of minutes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence

import pytest

from repro.analysis.experiments import RunSettings

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    """Whether the paper-exact scale was requested."""
    return os.environ.get("REPRO_FULL", "").strip() not in ("", "0")


@dataclass(frozen=True)
class BenchScale:
    """Scale knobs shared by the figure/table benchmarks."""

    nodes: int
    edges: int
    figure2_counts: Sequence[int]
    table1_counts: Sequence[int]
    figure3_nodes: Sequence[int]
    figure3_connections: int
    figure4_populations: Sequence[int]
    settings: RunSettings


def bench_scale() -> BenchScale:
    """The active scale (env-controlled)."""
    if full_scale():
        return BenchScale(
            nodes=100,
            edges=354,
            figure2_counts=(500, 1000, 2000, 3000, 4000, 5000),
            table1_counts=(1000, 2000, 3000, 4000, 5000),
            figure3_nodes=(100, 200, 300, 400, 500),
            figure3_connections=3000,
            figure4_populations=(2000, 3000),
            settings=RunSettings(warmup_events=500, measure_events=3000, seed=7),
        )
    return BenchScale(
        nodes=60,
        edges=130,
        figure2_counts=(150, 300, 600, 1000, 1500),
        table1_counts=(300, 800, 1500),
        figure3_nodes=(40, 60, 80, 100),
        figure3_connections=600,
        figure4_populations=(400, 700),
        settings=RunSettings(warmup_events=200, measure_events=1000, seed=7),
    )


def archive(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    scale_tag = "full" if full_scale() else "quick"
    path = RESULTS_DIR / f"{name}.{scale_tag}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[archived to {path}]")


@pytest.fixture
def scale() -> BenchScale:
    """Active benchmark scale."""
    return bench_scale()
