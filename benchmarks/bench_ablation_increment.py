"""Ablation A4: increment size Δ — granularity vs. reallocation churn.

The paper (§4, Table 1 discussion): "The two schemes show a similar
average behavior, but the scheme with a smaller increment size provides
bandwidth close to the average bandwidth.  However, the scheme with a
smaller increment size changes its bandwidth more frequently than the
scheme with a larger increment size."  This ablation measures both: the
average bandwidth and the *level-change rate* (reallocations per channel
observation) for Δ in {25, 50, 100, 200}.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import archive
from repro.analysis.experiments import RunSettings, paper_connection_qos, simulate_point
from repro.analysis.report import render_table
from repro.topology.waxman import paper_random_network
from repro.units import PAPER_LINK_CAPACITY


def _offdiag_share(params) -> float:
    """Observation-weighted probability that an event moved a channel.

    For each estimated matrix, averages ``1 - diagonal`` over the rows
    that were actually observed (uniform prior rows are skipped), then
    weights by the matrix's observation count.  This is the paper's
    "changes its bandwidth more frequently" metric.
    """
    share = 0.0
    total = 0
    for name, matrix in (("a", params.a), ("b", params.b), ("t", params.t)):
        count = params.observations.get(name, 0)
        if count:
            n = matrix.shape[0]
            occupied = [i for i in range(n) if not np.allclose(matrix[i], 1.0 / n)]
            if occupied:
                diag = float(np.mean([matrix[i, i] for i in occupied]))
                share += count * (1.0 - diag)
                total += count
    return share / total if total else 0.0


def test_increment_ablation(benchmark, scale):
    rng = np.random.default_rng(scale.settings.seed)
    net = paper_random_network(
        PAPER_LINK_CAPACITY, rng, n=scale.nodes, target_edges=scale.edges
    )
    offered = scale.figure2_counts[len(scale.figure2_counts) // 2]
    increments = (25.0, 50.0, 100.0, 200.0)

    def run():
        rows = []
        for delta in increments:
            qos = paper_connection_qos(increment=delta)
            result, model = simulate_point(net, offered, qos, scale.settings)
            off_diag = _offdiag_share(result.params)
            rows.append(
                [
                    delta,
                    qos.performance.num_levels,
                    result.average_bandwidth,
                    model.average_bandwidth(),
                    off_diag,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["Δ Kb/s", "states N", "sim avg Kb/s", "model avg Kb/s", "level-change share"],
        rows,
        precision=3,
        title=f"Ablation A4 — increment size ({offered} offered connections)",
    )
    archive("ablation_increment", table)

    bandwidths = [row[2] for row in rows]
    # Table 1's claim: average bandwidth is insensitive to Δ.
    assert max(bandwidths) - min(bandwidths) < 0.2 * max(bandwidths)
