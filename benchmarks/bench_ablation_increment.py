"""Ablation A4: increment size Δ — granularity vs. reallocation churn.

The paper (§4, Table 1 discussion): "The two schemes show a similar
average behavior, but the scheme with a smaller increment size provides
bandwidth close to the average bandwidth.  However, the scheme with a
smaller increment size changes its bandwidth more frequently than the
scheme with a larger increment size."  This ablation measures both: the
average bandwidth and the *level-change rate* (reallocations per channel
observation) for Δ in {25, 50, 100, 200}.

Each Δ is one :class:`~repro.parallel.SimJob` (topology rebuilt in the
worker), so the sweep fans out over the process pool when
``REPRO_JOBS`` > 1.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import archive, bench_jobs
from repro.analysis.experiments import paper_connection_qos
from repro.analysis.report import render_table
from repro.errors import MarkovModelError
from repro.markov.model import ElasticQoSMarkovModel
from repro.parallel import SimJob, TopologySpec, derive_seeds, run_sim_jobs
from repro.units import PAPER_LINK_CAPACITY


def _offdiag_share(params) -> float:
    """Observation-weighted probability that an event moved a channel.

    For each estimated matrix, averages ``1 - diagonal`` over the rows
    that were actually observed (uniform prior rows are skipped), then
    weights by the matrix's observation count.  This is the paper's
    "changes its bandwidth more frequently" metric.
    """
    share = 0.0
    total = 0
    for name, matrix in (("a", params.a), ("b", params.b), ("t", params.t)):
        count = params.observations.get(name, 0)
        if count:
            n = matrix.shape[0]
            occupied = [i for i in range(n) if not np.allclose(matrix[i], 1.0 / n)]
            if occupied:
                diag = float(np.mean([matrix[i, i] for i in occupied]))
                share += count * (1.0 - diag)
                total += count
    return share / total if total else 0.0


def test_increment_ablation(benchmark, scale):
    offered = scale.figure2_counts[len(scale.figure2_counts) // 2]
    increments = (25.0, 50.0, 100.0, 200.0)
    seeds = derive_seeds(scale.settings.seed, 1 + len(increments))
    topology = TopologySpec(
        "waxman",
        PAPER_LINK_CAPACITY,
        seeds[0],
        nodes=scale.nodes,
        edges=scale.edges,
    )
    sim_jobs = [
        SimJob.from_settings(
            ("ablation-increment", delta),
            topology,
            offered,
            paper_connection_qos(increment=delta),
            scale.settings,
            seeds[1 + i],
        )
        for i, delta in enumerate(increments)
    ]

    results = benchmark.pedantic(
        lambda: run_sim_jobs(sim_jobs, jobs=bench_jobs()), rounds=1, iterations=1
    )
    rows = []
    for delta, res in zip(increments, results):
        qos = res.job.qos
        try:
            model_bw = ElasticQoSMarkovModel(
                qos.performance, res.result.params
            ).average_bandwidth()
        except MarkovModelError:
            # Fine-grained chains (many states) can come out reducible
            # at quick scale when the top levels go unobserved; the
            # model column is informative only, the claim is on the
            # simulated bandwidths.
            model_bw = float("nan")
        rows.append(
            [
                delta,
                qos.performance.num_levels,
                res.result.average_bandwidth,
                model_bw,
                _offdiag_share(res.result.params),
            ]
        )
    table = render_table(
        ["Δ Kb/s", "states N", "sim avg Kb/s", "model avg Kb/s", "level-change share"],
        rows,
        precision=3,
        title=f"Ablation A4 — increment size ({offered} offered connections)",
    )
    archive("ablation_increment", table)

    bandwidths = [row[2] for row in rows]
    # Table 1's claim: average bandwidth is insensitive to Δ.
    assert max(bandwidths) - min(bandwidths) < 0.2 * max(bandwidths)
