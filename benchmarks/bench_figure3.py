"""Figure 3: average bandwidth vs. network size.

Regenerates the paper's Figure 3: at a fixed connection count, networks
of growing node count (same Waxman parameters, so the edge count
"increases rapidly with the number of nodes") give each connection more
capacity — the average bandwidth rises toward B_max.  Both the
simulation and the analytic curve are produced, plus the edge-count
series the paper overlays.
"""

from __future__ import annotations

from benchmarks.conftest import archive, archive_timings
from repro.analysis.experiments import run_figure3
from repro.analysis.report import render_table


def test_figure3(benchmark, scale, jobs):
    sink = []
    rows = benchmark.pedantic(
        lambda: run_figure3(
            scale.figure3_nodes,
            connections=scale.figure3_connections,
            settings=scale.settings,
            jobs=jobs,
            timing_sink=sink,
        ),
        rounds=1,
        iterations=1,
    )
    archive_timings("figure3", sink)
    table = render_table(
        ["nodes", "edges", "sim Kb/s", "model Kb/s"],
        [[row.nodes, row.edges, row.simulated, row.analytic] for row in rows],
        title=(
            f"Figure 3 — avg bandwidth vs. network size "
            f"({scale.figure3_connections} connections)"
        ),
    )
    archive("figure3", table)

    # Edge count grows superlinearly with node count (fixed Waxman params).
    edges = [row.edges for row in rows]
    assert all(b > a for a, b in zip(edges, edges[1:]))
    first, last = rows[0], rows[-1]
    node_ratio = last.nodes / first.nodes
    assert last.edges / first.edges > 1.5 * node_ratio, "edges must grow superlinearly"
    # More network for the same load: bandwidth must not decrease.
    assert last.simulated >= first.simulated - 10.0
